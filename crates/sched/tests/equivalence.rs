//! Equivalence property suite: the discrete-event dispatcher must report
//! exactly what the retired round-based engine reported.
//!
//! [`Scheduler::run`] replaced the round-robin drain loop with a binary
//! heap of resource-completion events. The round engine is kept compiled
//! (`Scheduler::run_round_based`, hidden from docs) precisely so these
//! tests can hold the new engine to the strongest possible contract:
//! serialize both engines' full `SchedReport` — every per-session report,
//! wait/io total, makespan, round/batch counter and prefetch statistic —
//! and require the JSON to be byte-for-byte identical, across fleet
//! sizes, prefetch on/off, and worker-pool widths. Fault injection is
//! exercised separately (the engines may legitimately interleave requeue
//! traffic differently): there the event engine must be self-consistent —
//! deterministic across thread counts — and drain every request to the
//! fallback resource without surfacing errors.

use msr_core::{DatasetSpec, FutureUse, MsrSystem};
use msr_meta::ElementType;
use msr_sched::{Scheduler, SessionProgram};
use msr_storage::StorageKind;

/// Astro3D-shaped producer: two float variables, archive + analysis.
fn astro(i: usize) -> SessionProgram {
    SessionProgram::new(&format!("astro3d-{i}"))
        .user("sim")
        .iterations(12)
        .dataset(
            DatasetSpec::builder("temp")
                .element(ElementType::F32)
                .cube(16)
                .frequency(6)
                .future_use(FutureUse::Archive)
                .build(),
        )
        .dataset(
            DatasetSpec::builder("pres")
                .element(ElementType::F32)
                .cube(16)
                .frequency(6)
                .future_use(FutureUse::Analysis)
                .build(),
        )
}

/// Volren-shaped visualization feed: byte cubes every 3 iterations.
fn volren(i: usize) -> SessionProgram {
    SessionProgram::new(&format!("volren-{i}"))
        .user("viz")
        .iterations(12)
        .dataset(
            DatasetSpec::builder("vr_temp")
                .element(ElementType::U8)
                .cube(16)
                .frequency(3)
                .future_use(FutureUse::Visualization)
                .build(),
        )
}

/// Producer/renderer mix spanning several storage kinds at once.
fn mixed_fleet(n: usize) -> Vec<SessionProgram> {
    (0..n)
        .map(|i| if i % 2 == 0 { astro(i) } else { volren(i) })
        .collect()
}

/// Tape-heavy archival producers with end-of-run readbacks — the fleet
/// whose idle tape windows the prefetcher actually fills, so staged
/// serves (cache hits, leftovers, background cursors) are all exercised.
fn consumer_fleet(n: usize) -> Vec<SessionProgram> {
    (0..n)
        .map(|i| {
            SessionProgram::new(&format!("archive-{i:02}"))
                .user("post")
                .iterations(24)
                .dataset(
                    DatasetSpec::builder("hist")
                        .element(ElementType::F32)
                        .cube(16)
                        .frequency(6)
                        .future_use(FutureUse::Archive)
                        .build(),
                )
                .readbacks(3)
        })
        .collect()
}

/// Drain `programs` on a fresh testbed with one of the two engines and
/// serialize the whole report.
fn drain(seed: u64, programs: Vec<SessionProgram>, prefetch: bool, event: bool) -> String {
    let sys = MsrSystem::testbed(seed);
    let mut sched = Scheduler::new(&sys).with_prefetch(prefetch);
    for p in programs {
        sched.admit(p).unwrap();
    }
    let report = if event {
        sched.run().unwrap()
    } else {
        sched.run_round_based().unwrap()
    };
    serde_json::to_string(&report).unwrap()
}

fn assert_engines_agree(fleet: fn(usize) -> Vec<SessionProgram>, label: &str) {
    for n in [1usize, 4, 16] {
        for prefetch in [false, true] {
            let round = drain(2000, fleet(n), prefetch, false);
            let event = drain(2000, fleet(n), prefetch, true);
            assert_eq!(
                event, round,
                "{label} fleet n={n} prefetch={prefetch}: event engine diverged from round engine"
            );
            // And at a single-threaded pool: the round engine executed
            // batches on the worker pool, the event engine inline — both
            // must be indifferent to MSR_THREADS.
            let narrow = rayon::pool::with_threads(1, || drain(2000, fleet(n), prefetch, true));
            assert_eq!(
                narrow, round,
                "{label} fleet n={n} prefetch={prefetch}: event engine diverged at MSR_THREADS=1"
            );
        }
    }
}

/// Mixed producer/renderer fleets: 1/4/16 sessions, prefetch on and off,
/// default pool and a single-threaded pool, all bitwise identical.
#[test]
fn event_engine_matches_round_engine_on_mixed_fleets() {
    assert_engines_agree(mixed_fleet, "mixed");
}

/// Archival consumer fleets, where read-ahead actually stages and serves
/// from cache: same bitwise contract.
#[test]
fn event_engine_matches_round_engine_on_consumer_fleets() {
    assert_engines_agree(consumer_fleet, "consumer");
}

/// Weighted-fair dispatch does not break engine equivalence: a fleet of
/// tenant-tagged programs with distinct weights drains to byte-identical
/// `SchedReport`s (tenant rows included) under the event engine and the
/// frozen round engine, at any worker-pool width.
#[test]
fn weighted_tenants_preserve_engine_equivalence() {
    let drain = |event: bool, threads: usize| {
        rayon::pool::with_threads(threads, || {
            let sys = MsrSystem::testbed(2100);
            sys.tenants
                .register(msr_core::Tenant::new("sim").with_weight(8.0));
            sys.tenants
                .register(msr_core::Tenant::new("viz").with_weight(2.0));
            let mut sched = Scheduler::new(&sys).with_prefetch(true);
            for i in 0..6 {
                let p = if i % 2 == 0 {
                    astro(i).tenant("sim")
                } else {
                    volren(i).tenant("viz")
                };
                sched.admit(p).unwrap();
            }
            let report = if event {
                sched.run().unwrap()
            } else {
                sched.run_round_based().unwrap()
            };
            serde_json::to_string(&report).unwrap()
        })
    };
    let round = drain(false, 4);
    assert_eq!(
        drain(true, 4),
        round,
        "WFQ event engine diverged from round engine"
    );
    assert_eq!(
        drain(true, 1),
        round,
        "WFQ event engine diverged at MSR_THREADS=1"
    );
}

/// The full admission-control stack — quotas, SLO pricing, deferral and
/// deadlines — stays bitwise deterministic across worker-pool widths
/// under the event engine.
#[test]
fn admission_control_drains_are_thread_count_independent() {
    let drain = || {
        let sys = MsrSystem::testbed(2200);
        sys.tenants
            .register(msr_core::Tenant::new("sim").with_weight(8.0).with_quota(
                msr_core::TenantQuota {
                    max_queued_requests: Some(64),
                    ..msr_core::TenantQuota::default()
                },
            ));
        sys.tenants.register(
            msr_core::Tenant::new("viz")
                .with_slo(msr_sim::SimDuration::from_secs(1e-3))
                .with_overload(msr_core::OverloadPolicy::Defer {
                    max_deferred: 4,
                    ttl: msr_sim::SimDuration::from_secs(1e9),
                }),
        );
        let mut sched = Scheduler::new(&sys).with_prefetch(true);
        for i in 0..4 {
            sched.admit(astro(i).tenant("sim")).unwrap();
        }
        for i in 0..2 {
            // Over-SLO behind the astro backlog: parks, admitted later.
            sched.admit(volren(i).tenant("viz")).unwrap();
        }
        sched
            .admit(
                astro(9)
                    .tenant("sim")
                    .deadline(msr_sim::SimDuration::from_secs(1e-6)),
            )
            .unwrap();
        serde_json::to_string(&sched.run().unwrap()).unwrap()
    };
    let wide = rayon::pool::with_threads(4, drain);
    let narrow = rayon::pool::with_threads(1, drain);
    assert_eq!(
        wide, narrow,
        "admission-control drain must not depend on MSR_THREADS"
    );
}

/// Chaos drain: tape goes dark after admission placed archives on it. The
/// event engine must requeue every stranded request to the fallback
/// resource (no session-visible errors), update the catalog, and produce
/// the same report at any worker-pool width.
#[test]
fn chaos_failover_requeues_deterministically_under_event_engine() {
    let run = || {
        let sys = MsrSystem::testbed(13);
        let mut sched = Scheduler::new(&sys).with_prefetch(true);
        for p in consumer_fleet(4) {
            sched.admit(p).unwrap();
        }
        sys.set_resource_online(StorageKind::RemoteTape, false);
        sched.run().unwrap()
    };
    let report = run();
    let requeues: u32 = report.sessions.iter().map(|s| s.requeues).sum();
    assert!(requeues > 0, "outage must force failover requeues");
    for s in &report.sessions {
        assert!(s.errors.is_empty(), "failover must stay transparent");
        assert_eq!(s.reports.len() as u64, s.requests);
        assert_ne!(
            s.placements["hist"],
            StorageKind::RemoteTape,
            "stranded archives must drain off the dead resource"
        );
    }
    let wide = serde_json::to_string(&report).unwrap();
    let narrow = rayon::pool::with_threads(1, || serde_json::to_string(&run()).unwrap());
    assert_eq!(wide, narrow, "chaos drains must not depend on worker count");
}
