//! Outage regression suite for the discrete-event dispatcher.
//!
//! PR 7 replaced the round loop with a binary heap of resource-completion
//! events. An outaged resource must *park* — its queue drains to the
//! fallback through the circuit-open branch and its cursor simply stops
//! receiving events — never *wedge* the heap with a `SimTime::INFINITY`
//! completion that would stall the drain forever. These tests hold the
//! engine to that contract under the harshest shapes: a resource dark for
//! the entire drain, an outage landing mid-drain, and every resource dark
//! at once (nothing left to fail over to).

use msr_core::{DatasetSpec, FutureUse, LocationHint, MsrSystem};
use msr_meta::ElementType;
use msr_sched::{Scheduler, SessionProgram};
use msr_sim::SimDuration;
use msr_storage::StorageKind;

/// Tape-bound archival producer (archive data defaults to tape when the
/// predictor is empty).
fn archive_program(i: usize) -> SessionProgram {
    SessionProgram::new(&format!("archive-{i:02}"))
        .user("sim")
        .iterations(24)
        .dataset(
            DatasetSpec::builder("hist")
                .element(ElementType::F32)
                .cube(16)
                .frequency(6)
                .future_use(FutureUse::Archive)
                .build(),
        )
}

/// A resource that is dark for the *whole* drain parks: every stranded
/// request re-queues to the fallback, the drain terminates with a finite
/// makespan, and no request is lost or wedged on the dead resource.
#[test]
fn whole_drain_outage_parks_and_drains_to_fallback() {
    let sys = MsrSystem::testbed(71);
    let mut sched = Scheduler::new(&sys);
    for i in 0..3 {
        sched.admit(archive_program(i)).unwrap();
    }
    sys.set_resource_online(StorageKind::RemoteTape, false);
    let report = sched.run().expect("drain must terminate, not wedge");
    assert!(report.makespan > SimDuration::ZERO);
    assert!(report.makespan.as_secs().is_finite(), "wedged makespan");
    let requeues: u32 = report.sessions.iter().map(|s| s.requeues).sum();
    assert!(requeues > 0, "tape work must have moved to the fallback");
    for s in &report.sessions {
        assert!(s.errors.is_empty(), "failover must stay transparent");
        assert_eq!(
            s.reports.len() as u64,
            s.requests,
            "every request must be served exactly once"
        );
        assert_ne!(
            s.placements["hist"],
            StorageKind::RemoteTape,
            "nothing may remain placed on the dead resource"
        );
    }
}

/// The outage drives the *failure path*, not just the planner pre-check:
/// the breaker starts closed, the first dispatches to the dark resource
/// fail, the circuit opens after the threshold, and from then on the
/// circuit-open branch drains the queue to fallback. The drain stays
/// bounded — a parked resource must not stall it past a small multiple of
/// the healthy makespan.
#[test]
fn outage_failures_trip_the_breaker_and_stay_bounded() {
    // Baseline: how long the healthy drain runs.
    let healthy = {
        let sys = MsrSystem::testbed(72);
        let mut sched = Scheduler::new(&sys);
        for i in 0..3 {
            sched.admit(archive_program(i)).unwrap();
        }
        sched.run().unwrap().makespan
    };

    let sys = MsrSystem::testbed(72);
    let mut sched = Scheduler::new(&sys);
    for i in 0..3 {
        sched.admit(archive_program(i)).unwrap();
    }
    sys.set_resource_online(StorageKind::RemoteTape, false);
    let report = sched.run().expect("outage must not wedge");
    assert!(report.makespan.as_secs().is_finite());
    assert!(
        report.makespan < healthy + healthy + healthy,
        "parked resource must not stall the drain: {} vs healthy {}",
        report.makespan,
        healthy
    );
    let served: u64 = report.sessions.iter().map(|s| s.requests).sum();
    let errors: usize = report.sessions.iter().map(|s| s.errors.len()).sum();
    assert!(served > 0);
    assert_eq!(errors, 0, "fallback capacity was available");
    // The breaker actually opened: requeue markers name the circuit.
    assert!(
        sys.health.total_counters().trips > 0,
        "offline dispatch failures must trip the breaker"
    );
}

/// Every resource dark at once: nothing to fail over to. The drain must
/// still terminate — every request surfaces as a typed per-request error
/// in the session report instead of wedging the event heap.
#[test]
fn total_outage_terminates_with_typed_errors() {
    let sys = MsrSystem::testbed(73);
    let mut sched = Scheduler::new(&sys);
    let id = sched
        .admit(
            SessionProgram::new("doomed").iterations(12).dataset(
                DatasetSpec::builder("d")
                    .element(ElementType::U8)
                    .cube(8)
                    .frequency(6)
                    .hint(LocationHint::LocalDisk)
                    .build(),
            ),
        )
        .unwrap()
        .expect("admitted");
    for kind in [
        StorageKind::LocalDisk,
        StorageKind::RemoteDisk,
        StorageKind::RemoteTape,
    ] {
        sys.set_resource_online(kind, false);
    }
    let report = sched.run().expect("total outage must terminate");
    let s = &report.sessions[id as usize];
    assert!(report.makespan.as_secs().is_finite());
    // Every queued request is accounted for: served (none can be) or
    // abandoned with a typed reason. Nothing silently vanishes.
    assert_eq!(s.requests, 0, "no resource could serve anything");
    assert!(
        !s.errors.is_empty(),
        "abandoned requests must surface as typed errors"
    );
    assert!(s
        .errors
        .iter()
        .all(|e| e.contains("gave up") || e.contains("no usable resource")));
}

/// The outage drain replays bitwise at any worker-pool width — parking a
/// resource must not introduce thread-count-dependent interleavings.
#[test]
fn outage_drains_replay_across_thread_counts() {
    let run = || {
        let sys = MsrSystem::testbed(74);
        let mut sched = Scheduler::new(&sys);
        for i in 0..3 {
            sched.admit(archive_program(i)).unwrap();
        }
        sys.set_resource_online(StorageKind::RemoteTape, false);
        serde_json::to_string(&sched.run().unwrap()).unwrap()
    };
    let wide = rayon::pool::with_threads(4, run);
    let narrow = rayon::pool::with_threads(1, run);
    assert_eq!(wide, narrow, "outage drain must not depend on MSR_THREADS");
}
