//! Weighted-fair queueing over per-tenant lanes.
//!
//! Each storage resource used to hold one FIFO `VecDeque` of queued
//! requests, so one backlogged tenant owned a resource until its queue
//! drained. [`WfqQueue`] replaces that with *start-time fair queueing*
//! (SFQ): one FIFO lane per tenant, a queue-wide virtual time, and a
//! per-lane finish tag. Selecting the next lane to serve takes the
//! smallest *start tag* `S = max(vtime, lane.finish)`; after serving a
//! batch of predicted cost `c` (eq. (1) service-time estimates, in
//! seconds) the queue sets `vtime = S` and the lane's finish tag to
//! `S + c / weight`. While several lanes stay backlogged each receives
//! service in proportion to its weight; an idle lane accumulates no
//! credit (its stale finish tag is clamped up to `vtime` on return), so
//! a bursty tenant cannot save up bandwidth and flood the resource
//! later.
//!
//! Determinism: lanes live in a `BTreeMap` keyed by [`TenantId`], tags
//! are exact `f64` arithmetic on model-derived estimates, and ties break
//! toward the smaller tenant id — nothing depends on host time, thread
//! count or hash order. With a single lane (every session on the default
//! tenant) `select` always returns that lane and the structure *is* the
//! old FIFO, which is what keeps the event-vs-round equivalence suite
//! bitwise green.

use msr_core::TenantId;
use std::collections::{BTreeMap, VecDeque};

struct Lane<T> {
    items: VecDeque<T>,
    weight: f64,
    /// Finish tag of the last batch this lane was served.
    finish: f64,
}

/// A per-resource ready queue: one FIFO lane per tenant under start-time
/// fair queueing. See the module docs for the discipline.
pub(crate) struct WfqQueue<T> {
    lanes: BTreeMap<TenantId, Lane<T>>,
    /// Queue-wide virtual time: the start tag of the last served batch.
    vtime: f64,
}

impl<T> Default for WfqQueue<T> {
    fn default() -> Self {
        WfqQueue {
            lanes: BTreeMap::new(),
            vtime: 0.0,
        }
    }
}

impl<T> WfqQueue<T> {
    /// Ensure `tenant`'s lane exists with `weight` (clamped positive).
    /// Updating the weight of an existing lane is allowed and takes
    /// effect from the next commit.
    pub fn set_weight(&mut self, tenant: TenantId, weight: f64) {
        let w = if weight > 0.0 { weight } else { 1.0 };
        self.lanes
            .entry(tenant)
            .or_insert_with(|| Lane {
                items: VecDeque::new(),
                weight: w,
                finish: 0.0,
            })
            .weight = w;
    }

    /// Append `item` to `tenant`'s lane (created at weight 1 if needed).
    pub fn push_back(&mut self, tenant: TenantId, item: T) {
        self.lanes
            .entry(tenant)
            .or_insert_with(|| Lane {
                items: VecDeque::new(),
                weight: 1.0,
                finish: 0.0,
            })
            .items
            .push_back(item);
    }

    /// Put `item` back at the head of `tenant`'s lane (a leftover from a
    /// partially-served batch).
    pub fn push_front(&mut self, tenant: TenantId, item: T) {
        self.lanes
            .entry(tenant)
            .or_insert_with(|| Lane {
                items: VecDeque::new(),
                weight: 1.0,
                finish: 0.0,
            })
            .items
            .push_front(item);
    }

    /// The lane to serve next: smallest start tag `max(vtime, finish)`
    /// over non-empty lanes, ties to the smaller tenant id. `None` when
    /// every lane is empty.
    pub fn select(&self) -> Option<TenantId> {
        let mut best: Option<(f64, TenantId)> = None;
        for (&t, lane) in &self.lanes {
            if lane.items.is_empty() {
                continue;
            }
            let start = self.vtime.max(lane.finish);
            // Strict `<` keeps the earliest (smallest-id) lane on ties.
            if best.is_none_or(|(b, _)| start < b) {
                best = Some((start, t));
            }
        }
        best.map(|(_, t)| t)
    }

    /// Mutable access to `tenant`'s lane FIFO, for popping batches (and
    /// the prefetcher's staged-run pops). The lane must exist — callers
    /// pop from a tenant [`select`](WfqQueue::select) just returned.
    pub fn lane_mut(&mut self, tenant: TenantId) -> &mut VecDeque<T> {
        &mut self
            .lanes
            .get_mut(&tenant)
            .expect("selected lane exists")
            .items
    }

    /// Account one served batch of predicted cost `cost` (seconds)
    /// against `tenant`: advance virtual time to the batch's start tag
    /// and the lane's finish tag by `cost / weight`.
    pub fn commit(&mut self, tenant: TenantId, cost: f64) {
        let lane = self.lanes.get_mut(&tenant).expect("committed lane exists");
        let start = self.vtime.max(lane.finish);
        self.vtime = start;
        lane.finish = start + cost.max(0.0) / lane.weight;
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.values().all(|l| l.items.is_empty())
    }

    /// Total queued items across lanes.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.lanes.values().map(|l| l.items.len()).sum()
    }

    /// Walk every queued item, lanes in tenant-id order, FIFO within a
    /// lane — the deterministic order the prefetch planner prices the
    /// queue in. With one lane this is exactly the old FIFO walk.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.lanes.values().flat_map(|l| l.items.iter())
    }

    /// Remove every item matching `pred` (lane order, FIFO within a
    /// lane), returning them — requeue traffic dragging a dataset's
    /// remaining requests, and deadline cancellation removing a whole
    /// session's queued batches.
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut out = Vec::new();
        for lane in self.lanes.values_mut() {
            let mut rest = VecDeque::new();
            while let Some(item) = lane.items.pop_front() {
                if pred(&item) {
                    out.push(item);
                } else {
                    rest.push_back(item);
                }
            }
            lane.items = rest;
        }
        out
    }

    /// Current queue-wide virtual time (tests).
    #[cfg(test)]
    fn vtime(&self) -> f64 {
        self.vtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG for randomized arrival orders (no host entropy:
    /// property runs must be reproducible).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn queue_with(weights: &[(u32, f64)]) -> WfqQueue<u32> {
        let mut q = WfqQueue::default();
        for &(t, w) in weights {
            q.set_weight(TenantId(t), w);
        }
        q
    }

    /// Serve the queue dry with unit-cost batches, recording the tenant
    /// order.
    fn drain_order(q: &mut WfqQueue<u32>) -> Vec<u32> {
        let mut order = Vec::new();
        while let Some(t) = q.select() {
            q.lane_mut(t).pop_front().unwrap();
            q.commit(t, 1.0);
            order.push(t.0);
        }
        order
    }

    #[test]
    fn single_lane_is_fifo() {
        let mut q = queue_with(&[(0, 1.0)]);
        for i in 0..10u32 {
            q.push_back(TenantId(0), i);
        }
        let mut popped = Vec::new();
        while let Some(t) = q.select() {
            popped.push(q.lane_mut(t).pop_front().unwrap());
            q.commit(t, 2.5);
        }
        assert_eq!(popped, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn virtual_time_is_monotone_under_random_arrivals() {
        let mut rng = Lcg(0xfa12);
        for _ in 0..50 {
            let mut q = queue_with(&[(0, 1.0), (1, 4.0), (2, 0.5)]);
            for i in 0..60u32 {
                q.push_back(TenantId((rng.below(3)) as u32), i);
            }
            let mut last = q.vtime();
            while let Some(t) = q.select() {
                q.lane_mut(t).pop_front().unwrap();
                q.commit(t, 0.25 + rng.below(8) as f64);
                assert!(
                    q.vtime() >= last,
                    "virtual time went backwards: {} < {last}",
                    q.vtime()
                );
                last = q.vtime();
                // Mid-drain arrivals must not rewind time either.
                if rng.below(4) == 0 {
                    q.push_back(TenantId(rng.below(3) as u32), 99);
                }
                if q.len() > 200 {
                    break; // bound the mid-drain arrival loop
                }
            }
        }
    }

    #[test]
    fn work_conservation_never_idles_while_backlogged() {
        // As long as any lane has items, select() must produce a lane —
        // regardless of how lopsided the finish tags are.
        let mut rng = Lcg(7);
        for _ in 0..50 {
            let mut q = queue_with(&[(0, 8.0), (1, 1.0)]);
            for i in 0..40u32 {
                q.push_back(TenantId(rng.below(2) as u32), i);
            }
            let total = q.len();
            let mut served = 0;
            while !q.is_empty() {
                let t = q.select().expect("backlogged queue must select a lane");
                q.lane_mut(t).pop_front().unwrap();
                q.commit(t, rng.below(100) as f64);
                served += 1;
            }
            assert_eq!(served, total);
            assert!(q.select().is_none());
        }
    }

    #[test]
    fn share_is_weight_proportional_within_a_bounded_window() {
        // Two continuously-backlogged unit-cost tenants at weights 3:1.
        // In any window of the service order, tenant 0's share must stay
        // within one batch of 3/4.
        let mut q = queue_with(&[(0, 3.0), (1, 1.0)]);
        for i in 0..400u32 {
            q.push_back(TenantId(i % 2), i);
        }
        let order = drain_order(&mut q);
        // Share proportionality only holds while both lanes stay
        // backlogged: at 3:1 the heavy lane's 200 items drain around serve
        // 266, so check windows strictly before that.
        let backlogged = &order[..240];
        for window in 8..=64usize {
            for chunk in backlogged.chunks(window) {
                if chunk.len() < window {
                    continue;
                }
                let heavy = chunk.iter().filter(|&&t| t == 0).count() as f64;
                let expected = window as f64 * 0.75;
                assert!(
                    (heavy - expected).abs() <= 1.0 + window as f64 * 0.05,
                    "window {window}: heavy tenant served {heavy}, expected ~{expected}"
                );
            }
        }
    }

    #[test]
    fn share_holds_under_randomized_arrival_orders() {
        let mut rng = Lcg(0xabcdef);
        for trial in 0..20 {
            let mut q = queue_with(&[(0, 2.0), (1, 1.0), (2, 1.0)]);
            // Random interleaving, equal totals per tenant, all present
            // before the drain starts (continuous backlog).
            let mut remaining = [120u32; 3];
            while remaining.iter().any(|&r| r > 0) {
                let t = rng.below(3) as usize;
                if remaining[t] > 0 {
                    remaining[t] -= 1;
                    q.push_back(TenantId(t as u32), remaining[t]);
                }
            }
            let order = drain_order(&mut q);
            // While all three lanes are backlogged (the first 240 serves:
            // the weight-2 lane drains its 120 fastest), shares must track
            // 2:1:1 within a batch of slack.
            let window = &order[..240];
            let w0 = window.iter().filter(|&&t| t == 0).count() as f64;
            let w1 = window.iter().filter(|&&t| t == 1).count() as f64;
            let w2 = window.iter().filter(|&&t| t == 2).count() as f64;
            assert!(
                (w0 - 120.0).abs() <= 2.0,
                "trial {trial}: weight-2 lane got {w0}/240, expected ~120"
            );
            assert!(
                (w1 - 60.0).abs() <= 2.0 && (w2 - 60.0).abs() <= 2.0,
                "trial {trial}: weight-1 lanes got {w1}/{w2}, expected ~60 each"
            );
        }
    }

    #[test]
    fn idle_lanes_accumulate_no_credit() {
        let mut q = queue_with(&[(0, 1.0), (1, 1.0)]);
        // Tenant 0 runs alone for a long stretch.
        for i in 0..50u32 {
            q.push_back(TenantId(0), i);
        }
        let mut served = 0;
        while served < 50 {
            let t = q.select().unwrap();
            q.lane_mut(t).pop_front().unwrap();
            q.commit(t, 1.0);
            served += 1;
        }
        // Tenant 1 arrives late: it must not get 50 units of catch-up —
        // from here the two lanes alternate 1:1.
        for i in 0..20u32 {
            q.push_back(TenantId(0), i);
            q.push_back(TenantId(1), i);
        }
        let order = drain_order(&mut q);
        for chunk in order.chunks(4) {
            if chunk.len() < 4 {
                continue;
            }
            let late = chunk.iter().filter(|&&t| t == 1).count();
            assert!(
                (1..=3).contains(&late),
                "late lane must share ~1:1, got {late}/4 in {chunk:?}"
            );
        }
    }

    #[test]
    fn drain_matching_removes_across_lanes_in_order() {
        let mut q = queue_with(&[(0, 1.0), (1, 1.0)]);
        for i in 0..6u32 {
            q.push_back(TenantId(i % 2), i);
        }
        let evens = q.drain_matching(|&v| v % 2 == 0);
        // Lane 0 holds 0,2,4 (all even); lane 1 holds 1,3,5 (none).
        assert_eq!(evens, vec![0, 2, 4]);
        assert_eq!(q.len(), 3);
        let rest: Vec<u32> = q.iter().copied().collect();
        assert_eq!(rest, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_toward_the_smaller_tenant_id() {
        let mut q = queue_with(&[(2, 1.0), (1, 1.0)]);
        q.push_back(TenantId(2), 0);
        q.push_back(TenantId(1), 1);
        // Both lanes start at tag 0: the smaller id wins.
        assert_eq!(q.select(), Some(TenantId(1)));
    }
}
