//! # msr-sched — prediction-driven scheduling of concurrent sessions
//!
//! The paper's architecture serves one application run at a time: a
//! [`msr_core::Session`] executes each dump on the caller's thread and
//! advances the global clock as it goes. A production deployment of the
//! same testbed faces *many* clients at once — several Astro3D runs
//! dumping while Volren renders and post-processing tools read back — all
//! contending for the same three storage resources.
//!
//! This crate adds that admission layer:
//!
//! * [`SessionProgram`] — one client's whole declared run, admitted as a
//!   unit.
//! * [`Scheduler`] — per-resource FIFO queues, a deterministic
//!   discrete-event dispatcher (a binary heap of resource-completion
//!   events; each step costs O(log resources + batch) regardless of
//!   session count), contiguous-request batching (one
//!   [`dispatch_overhead`] charge per batch), and transparent failover
//!   re-queues mirroring the session layer.
//! * Scored placement — admission resolves AUTO hints through
//!   `msr-core`'s placement, which ranks resources by eq. (2) predicted
//!   time inflated by this scheduler's live queue depths (the system
//!   [`msr_core::LoadBoard`]) and skips resources with open circuit
//!   breakers.
//! * [`SessionReport`]/[`SchedReport`] — per-session accounting in
//!   program order (bitwise reproducible at any `MSR_THREADS`) plus
//!   whole-run makespan and throughput; queue depths and wait times are
//!   also emitted as `sched`-layer observability events.
//! * Multi-tenant overload protection — programs carry an optional tenant
//!   tag ([`SessionProgram::tenant`]); dispatch runs start-time weighted-
//!   fair queueing across per-tenant lanes (eq. (1) predicted service
//!   times as batch costs), and admission prices every program with
//!   eq. (2) against the live load board, shedding
//!   ([`msr_core::CoreError::Rejected`]), deferring (bounded backpressure
//!   queue with TTL expiry) or cancelling deadline-unmeetable sessions
//!   mid-drain. Per-tenant outcomes land in [`TenantReport`].

mod event;
pub mod program;
pub mod report;
pub mod scheduler;
mod wfq;

pub use program::SessionProgram;
pub use report::{SchedReport, SessionReport, TenantReport};
pub use scheduler::{dispatch_overhead, Scheduler, MAX_CHAIN};
