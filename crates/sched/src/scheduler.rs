//! The admission scheduler: many concurrent sessions against one
//! [`MsrSystem`].
//!
//! **Admission** opens a real catalog session per program, resolves each
//! dataset's placement through `msr-core` (whose scored AUTO policy reads
//! this scheduler's live queue depths off the system's
//! [`LoadBoard`](msr_core::LoadBoard)) and expands the program into tagged
//! [`EngineRequest`]s.
//!
//! **Dispatch** is deterministic round-robin: requests are dealt into
//! per-resource FIFO queues (interleaved across sessions at chain
//! granularity so no client starves), and every round takes at most one
//! *batch* — a maximal run of contiguous requests from the same session
//! and dataset, capped at [`MAX_CHAIN`] — per resource. The selected
//! batches execute concurrently on the work-stealing pool (distinct
//! resources hold distinct locks), then their outcomes are applied on the
//! dispatcher thread in fixed resource order, which keeps per-session
//! accounting bitwise identical at any `MSR_THREADS`.
//!
//! **Virtual time** is tracked as one cursor per resource: a request's
//! service starts at its resource's cursor, its wait is the cursor minus
//! its submission instant, and the run's makespan is the latest cursor —
//! so concurrent sessions overlap across resources instead of serializing
//! on the global clock, which is advanced once at the end of the drain.
//!
//! **Failure handling** mirrors the session layer: a failed batch records
//! a breaker failure and the failed dataset's remaining requests are
//! re-queued onto the static fallback resource; a resource whose circuit
//! is already open is never dispatched to, its queue draining to fallback
//! resources the same way.

use crate::program::{payload, SessionProgram};
use crate::report::{SchedReport, SessionReport};
use msr_core::{placement, CoreError, CoreResult, DatasetSpec, MsrSystem, Session};
use msr_meta::{AccessMode, Location, RunId};
use msr_obs::{ops, Layer, Recorder};
use msr_runtime::{Distribution, EngineRequest, IoReport, RequestBody, RequestOutcome, RequestTag};
use msr_sim::{SimDuration, SimTime};
use msr_storage::{OpenMode, StorageKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Fixed virtual cost of dispatching one batch to a resource (queue
/// bookkeeping, placement lookup). Contiguous requests served in one batch
/// share a single charge — the benefit batching exists to win.
pub fn dispatch_overhead() -> SimDuration {
    SimDuration::from_millis(2.0)
}

/// Longest contiguous run of one session's requests served in a single
/// batch. Bounds how long a bursty client can monopolize a resource.
pub const MAX_CHAIN: usize = 8;

/// Re-queue attempts per request before it is abandoned.
const MAX_ATTEMPTS: u32 = 3;

struct Admitted<'a> {
    id: u64,
    app: String,
    run: RunId,
    session: Session<'a>,
    requests: VecDeque<EngineRequest>,
}

struct Queued {
    req: EngineRequest,
    submitted: SimTime,
    attempts: u32,
}

/// Per-session accumulator while the queues drain.
struct Acc {
    reports: Vec<(u64, IoReport)>,
    wait: SimDuration,
    bytes: u64,
    io: SimDuration,
    completed: SimTime,
    requeues: u32,
    errors: Vec<String>,
}

/// The scheduler. Admit programs, then [`run`](Scheduler::run) to drain.
pub struct Scheduler<'a> {
    sys: &'a MsrSystem,
    rec: Recorder,
    admitted: Vec<Admitted<'a>>,
    /// Current resource of each `(session, dataset)`, updated on requeue.
    locations: BTreeMap<(u64, String), StorageKind>,
    specs: BTreeMap<(u64, String), DatasetSpec>,
}

impl<'a> Scheduler<'a> {
    /// A scheduler over `sys`. Nothing is queued until programs are
    /// admitted.
    pub fn new(sys: &'a MsrSystem) -> Scheduler<'a> {
        Scheduler {
            sys,
            rec: sys.obs_recorder(),
            admitted: Vec::new(),
            locations: BTreeMap::new(),
            specs: BTreeMap::new(),
        }
    }

    /// Sessions admitted so far.
    pub fn sessions(&self) -> usize {
        self.admitted.len()
    }

    /// Admit one program: register its catalog session, place its datasets
    /// (scored AUTO placement sees the current queue depths), expand it
    /// into tagged requests and account them on the system's load board.
    /// Returns the scheduler-assigned session id.
    pub fn admit(&mut self, program: SessionProgram) -> CoreResult<u64> {
        let id = self.admitted.len() as u64;
        let mut session = self
            .sys
            .session()
            .app(&program.app)
            .user(&program.user)
            .iterations(program.iterations)
            .grid(program.grid)
            .build()?;
        for spec in &program.datasets {
            session.open(spec.clone())?;
        }
        let run = session.run_id();
        for d in session.report().datasets {
            if let Some(kind) = d.location {
                self.locations.insert((id, d.name), kind);
            }
        }
        for spec in &program.datasets {
            self.specs.insert((id, spec.name.clone()), spec.clone());
        }

        let mut requests = VecDeque::new();
        let mut seq = 0u64;
        // Dataset-major expansion keeps one dataset's dumps at consecutive
        // sequence numbers, which is what makes them batchable.
        for spec in &program.datasets {
            if !self.locations.contains_key(&(id, spec.name.clone())) || spec.frequency == 0 {
                continue;
            }
            let dist = Distribution::new(spec.dims, spec.etype.size(), spec.pattern, program.grid)?;
            let mode = match spec.amode {
                AccessMode::Create => OpenMode::Create,
                AccessMode::OverWrite => OpenMode::OverWrite,
            };
            let mut first_path = None;
            for iter in 0..=program.iterations {
                if !iter.is_multiple_of(spec.frequency) {
                    continue;
                }
                let path = dump_path(&program.app, run, spec, iter);
                first_path.get_or_insert_with(|| path.clone());
                let data = payload(id, &spec.name, iter, spec.snapshot_bytes() as usize);
                requests.push_back(EngineRequest {
                    tag: RequestTag { session: id, seq },
                    dataset: spec.name.clone(),
                    path,
                    dist,
                    strategy: spec.strategy,
                    body: RequestBody::Write { data, mode },
                });
                seq += 1;
            }
            if program.readback {
                if let Some(path) = first_path {
                    requests.push_back(EngineRequest {
                        tag: RequestTag { session: id, seq },
                        dataset: spec.name.clone(),
                        path,
                        dist,
                        strategy: spec.strategy,
                        body: RequestBody::Read,
                    });
                    seq += 1;
                }
            }
        }

        let now = self.sys.clock.now();
        let mut per_kind: BTreeMap<StorageKind, usize> = BTreeMap::new();
        for req in &requests {
            let kind = self.locations[&(id, req.dataset.clone())];
            *per_kind.entry(kind).or_insert(0) += 1;
        }
        for (kind, n) in per_kind {
            let depth = self.sys.load.enqueued(kind, n);
            self.rec.count(
                Layer::Sched,
                &kind.to_string(),
                ops::QUEUE_DEPTH,
                now,
                depth as f64,
            );
        }
        self.rec.instant(
            Layer::Sched,
            &program.app,
            ops::SESSION_ADMIT,
            now,
            &format!("session {id}: {} requests, run{}", requests.len(), run.0),
        );

        self.admitted.push(Admitted {
            id,
            app: program.app.clone(),
            run,
            session,
            requests,
        });
        Ok(id)
    }

    /// Drain every admitted session's requests and return the run's
    /// accounting. Consumes the scheduler: the catalog sessions are
    /// finalized (disconnect costs charged) on the way out, and the global
    /// clock is advanced to the scheduled makespan.
    pub fn run(mut self) -> CoreResult<SchedReport> {
        let start = self.sys.clock.now();
        let mut queues = self.build_queues(start);
        let mut cursors: BTreeMap<StorageKind, SimTime> =
            queues.keys().map(|&k| (k, start)).collect();
        let mut accs: BTreeMap<u64, Acc> = self
            .admitted
            .iter()
            .map(|a| {
                (
                    a.id,
                    Acc {
                        reports: Vec::new(),
                        wait: SimDuration::ZERO,
                        bytes: 0,
                        io: SimDuration::ZERO,
                        completed: start,
                        requeues: 0,
                        errors: Vec::new(),
                    },
                )
            })
            .collect();

        let mut rounds = 0u64;
        let mut batches = 0u64;
        let mut max_batch = 0usize;

        loop {
            // One batch per resource per round, in fixed resource order.
            let mut picked: Vec<(StorageKind, Vec<Queued>)> = Vec::new();
            let mut blocked: Vec<(StorageKind, Vec<Queued>)> = Vec::new();
            for (&kind, q) in queues.iter_mut() {
                let Some(head) = q.pop_front() else { continue };
                let mut batch = vec![head];
                while batch.len() < MAX_CHAIN
                    && q.front()
                        .is_some_and(|n| batch.last().unwrap().req.chains_with(&n.req))
                {
                    batch.push(q.pop_front().unwrap());
                }
                if self.sys.health.allows(kind) {
                    picked.push((kind, batch));
                } else {
                    blocked.push((kind, batch));
                }
            }
            if picked.is_empty() && blocked.is_empty() {
                break;
            }
            rounds += 1;

            // Execute the round's batches concurrently: each touches only
            // its own resource, so per-resource state stays deterministic.
            let engine = &self.sys.engine;
            let tasks: Vec<_> = picked
                .into_iter()
                .map(|(kind, batch)| {
                    let res = self.sys.resource(kind).expect("placed on registered kind");
                    (kind, batch, res)
                })
                .collect();
            let results: Vec<(StorageKind, BatchResult)> = rayon::pool::execute(
                tasks
                    .into_iter()
                    .map(|(kind, batch, res)| {
                        move || {
                            let mut served = Vec::new();
                            let mut pending = batch.into_iter();
                            let mut failed = None;
                            for q in pending.by_ref() {
                                match engine.execute(&res, &q.req) {
                                    Ok(outcome) => served.push((q, outcome)),
                                    Err(e) => {
                                        failed = Some((q, CoreError::from(e).to_string()));
                                        break;
                                    }
                                }
                            }
                            let mut unserved = Vec::new();
                            let error = failed.map(|(q, e)| {
                                unserved.push(q);
                                e
                            });
                            unserved.extend(pending);
                            (kind, (served, unserved, error))
                        }
                    })
                    .collect(),
            );

            // Apply outcomes on this thread, in the round's fixed order.
            for (kind, (served, unserved, error)) in results {
                let cursor = cursors.entry(kind).or_insert(start);
                let batch_start = *cursor;
                *cursor += dispatch_overhead();
                let mut batch_bytes = 0u64;
                let mut n = 0usize;
                for (q, outcome) in served {
                    let report = outcome.into_report();
                    let wait = cursor.since(q.submitted);
                    self.rec.span(
                        Layer::Sched,
                        &kind.to_string(),
                        ops::SCHED_WAIT,
                        q.submitted,
                        wait,
                        report.bytes,
                    );
                    *cursor += report.elapsed;
                    batch_bytes += report.bytes;
                    n += 1;
                    self.sys.health.record_success(kind);
                    let depth = self.sys.load.dequeued(kind, 1);
                    self.rec.count(
                        Layer::Sched,
                        &kind.to_string(),
                        ops::QUEUE_DEPTH,
                        *cursor,
                        depth as f64,
                    );
                    let acc = accs.get_mut(&q.req.tag.session).expect("admitted session");
                    acc.reports.push((q.req.tag.seq, report.clone()));
                    acc.wait += wait;
                    acc.bytes += report.bytes;
                    acc.io += report.elapsed;
                    acc.completed = acc.completed.max(*cursor);
                }
                if n > 0 {
                    batches += 1;
                    max_batch = max_batch.max(n);
                    let dur = cursor.since(batch_start);
                    self.rec.span(
                        Layer::Sched,
                        &kind.to_string(),
                        ops::SCHED_DISPATCH,
                        batch_start,
                        dur,
                        batch_bytes,
                    );
                }
                if let Some(reason) = error {
                    self.sys.health.record_failure(kind);
                    self.requeue(kind, unserved, &reason, &mut queues, &mut accs);
                }
            }
            for (kind, batch) in blocked {
                self.requeue(kind, batch, "circuit open", &mut queues, &mut accs);
            }
        }

        // The drain overlapped sessions across resources; the global clock
        // moves once, to the latest cursor.
        let end = cursors.values().fold(start, |m, &t| m.max(t));
        self.sys.clock.advance_to(end);

        let mut sessions = Vec::new();
        let mut total_bytes = 0u64;
        for a in std::mem::take(&mut self.admitted) {
            let mut acc = accs.remove(&a.id).expect("accumulator per session");
            acc.reports.sort_by_key(|&(seq, _)| seq);
            let fin = a.session.finalize()?;
            let placements = self
                .locations
                .iter()
                .filter(|((sid, _), _)| *sid == a.id)
                .map(|((_, name), &kind)| (name.clone(), kind))
                .collect();
            total_bytes += acc.bytes;
            sessions.push(SessionReport {
                session: a.id,
                app: a.app,
                run: a.run.0,
                placements,
                requests: acc.reports.len() as u64,
                bytes: acc.bytes,
                io_time: acc.io,
                wait_time: acc.wait,
                conn_time: fin.conn_time,
                completed_at: acc.completed,
                requeues: acc.requeues,
                errors: acc.errors,
                reports: acc.reports.into_iter().map(|(_, r)| r).collect(),
            });
        }

        let makespan = self.sys.clock.now().since(start);
        let throughput_mb_s = if makespan > SimDuration::ZERO {
            total_bytes as f64 / makespan.as_secs() / 1e6
        } else {
            0.0
        };
        Ok(SchedReport {
            sessions,
            makespan,
            total_bytes,
            rounds,
            batches,
            max_batch,
            throughput_mb_s,
        })
    }

    /// Deal every admitted session's requests into per-resource FIFO
    /// queues, round-robin across sessions at chain granularity: each turn
    /// takes one batchable run (same dataset, consecutive seqs, at most
    /// [`MAX_CHAIN`]) from each session, so no client's backlog buries
    /// another's.
    fn build_queues(&mut self, submitted: SimTime) -> BTreeMap<StorageKind, VecDeque<Queued>> {
        let mut queues: BTreeMap<StorageKind, VecDeque<Queued>> = BTreeMap::new();
        loop {
            let mut any = false;
            for a in &mut self.admitted {
                let Some(first) = a.requests.pop_front() else {
                    continue;
                };
                any = true;
                let mut chain = vec![first];
                while chain.len() < MAX_CHAIN
                    && a.requests
                        .front()
                        .is_some_and(|n| chain.last().unwrap().chains_with(n))
                {
                    chain.push(a.requests.pop_front().unwrap());
                }
                for req in chain {
                    let kind = self.locations[&(a.id, req.dataset.clone())];
                    queues.entry(kind).or_default().push_back(Queued {
                        req,
                        submitted,
                        attempts: 0,
                    });
                }
            }
            if !any {
                break;
            }
        }
        queues
    }

    /// Move a failed (or breaker-blocked) batch — and everything else the
    /// same dataset still has queued on `from` — to the dataset's static
    /// fallback resource, mirroring the session layer's transparent
    /// failover. Requests that exhaust [`MAX_ATTEMPTS`] are abandoned into
    /// the session's error list.
    fn requeue(
        &mut self,
        from: StorageKind,
        mut items: Vec<Queued>,
        reason: &str,
        queues: &mut BTreeMap<StorageKind, VecDeque<Queued>>,
        accs: &mut BTreeMap<u64, Acc>,
    ) {
        let keys: BTreeSet<(u64, String)> = items
            .iter()
            .map(|q| (q.req.tag.session, q.req.dataset.clone()))
            .collect();
        // Drag along the dataset's later requests still waiting on `from`,
        // preserving their order behind the failed batch.
        if let Some(q) = queues.get_mut(&from) {
            let mut rest = VecDeque::new();
            while let Some(item) = q.pop_front() {
                if keys.contains(&(item.req.tag.session, item.req.dataset.clone())) {
                    items.push(item);
                } else {
                    rest.push_back(item);
                }
            }
            *q = rest;
        }

        for key in keys {
            let spec = &self.specs[&key];
            let moved: Vec<Queued> = {
                let mut moved = Vec::new();
                let mut rest = Vec::new();
                for q in items.drain(..) {
                    if (q.req.tag.session, q.req.dataset.clone()) == key {
                        moved.push(q);
                    } else {
                        rest.push(q);
                    }
                }
                items = rest;
                moved
            };
            let bytes: u64 = moved.iter().map(|q| q.req.bytes()).sum();
            let next = placement::fallback(self.sys, spec, bytes, Some(from))
                .ok()
                .flatten();
            let now = self.sys.clock.now();
            match next {
                Some(to) => {
                    let n = moved.len();
                    self.locations.insert(key.clone(), to);
                    self.update_catalog(key.0, &key.1, to);
                    self.rec.instant(
                        Layer::Sched,
                        &from.to_string(),
                        ops::SCHED_REQUEUE,
                        now,
                        &format!(
                            "s{}/{}: {from} -> {to} ({reason}, {n} requests)",
                            key.0, key.1
                        ),
                    );
                    let acc = accs.get_mut(&key.0).expect("admitted session");
                    acc.requeues += n as u32;
                    self.sys.load.dequeued(from, n);
                    self.sys.load.enqueued(to, n);
                    let target = queues.entry(to).or_default();
                    for mut q in moved {
                        q.attempts += 1;
                        if q.attempts >= MAX_ATTEMPTS {
                            self.sys.load.dequeued(to, 1);
                            accs.get_mut(&key.0)
                                .expect("admitted session")
                                .errors
                                .push(format!(
                                    "{} gave up after {} attempts",
                                    q.req.tag, q.attempts
                                ));
                        } else {
                            target.push_back(q);
                        }
                    }
                }
                None => {
                    self.sys.load.dequeued(from, moved.len());
                    let acc = accs.get_mut(&key.0).expect("admitted session");
                    for q in moved {
                        acc.errors
                            .push(format!("{}: no usable resource ({reason})", q.req.tag));
                    }
                }
            }
        }
    }

    /// Mirror a requeue's location change into the metadata catalog so
    /// consumers still find the data (the session layer does the same on
    /// its failover path).
    fn update_catalog(&self, session: u64, dataset: &str, to: StorageKind) {
        let Some(a) = self.admitted.iter().find(|a| a.id == session) else {
            return;
        };
        let mut catalog = self.sys.catalog.lock();
        if let Ok(rec) = catalog.find_dataset(a.run, dataset) {
            let id = rec.id;
            let _ = catalog.set_dataset_location(id, Location::Stored(to));
        }
    }
}

fn dump_path(app: &str, run: RunId, spec: &DatasetSpec, iter: u32) -> String {
    let base = format!("{}/run{}/{}", app, run.0, spec.name);
    match spec.amode {
        AccessMode::Create => format!("{base}.t{iter:05}"),
        AccessMode::OverWrite => base,
    }
}

type BatchResult = (Vec<(Queued, RequestOutcome)>, Vec<Queued>, Option<String>);
