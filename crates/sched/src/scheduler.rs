//! The admission scheduler: many concurrent sessions against one
//! [`MsrSystem`].
//!
//! **Admission** opens a real catalog session per program, resolves each
//! dataset's placement through `msr-core` (whose scored AUTO policy reads
//! this scheduler's live queue depths off the system's
//! [`LoadBoard`](msr_core::LoadBoard)) and expands the program into tagged
//! [`EngineRequest`]s.
//!
//! **Dispatch** is discrete-event: requests are dealt into per-resource
//! FIFO queues (interleaved across sessions at chain granularity so no
//! client starves), and a binary heap of resource-completion events (see
//! [`crate::event`]) keeps one pending event per resource. When a
//! resource comes free its event fires, the dispatcher pops at most one
//! *batch* — a maximal run of contiguous requests from the same session
//! and dataset, capped at [`MAX_CHAIN`] — executes it, and re-arms the
//! resource at its advanced cursor. Sessions wake lazily (a session is
//! touched only when the resource at its queue head comes free), so one
//! dispatch step costs O(log resources + batch) no matter how many
//! sessions are admitted. Events are totally ordered by
//! `(time, resource, seq)` and every outcome is computed from seeded
//! jitter streams on the dispatcher thread, which keeps per-session
//! accounting bitwise identical at any `MSR_THREADS` — and identical to
//! the retired round-robin engine ([`Scheduler::run_round_based`], kept
//! compiled as the equivalence-test reference) on fault-free drains.
//!
//! **Virtual time** is tracked as one cursor per resource: a request's
//! service starts at its resource's cursor, its wait is the cursor minus
//! its submission instant, and the run's makespan is the latest cursor —
//! so concurrent sessions overlap across resources instead of serializing
//! on the global clock, which is advanced once at the end of the drain.
//!
//! **Failure handling** mirrors the session layer: a failed batch records
//! a breaker failure and the failed dataset's remaining requests are
//! re-queued onto the static fallback resource; a resource whose circuit
//! is already open is never dispatched to, its queue draining to fallback
//! resources the same way.
//!
//! **Read-ahead** (opt-in via [`Scheduler::with_prefetch`] or
//! `MSR_PREFETCH=1`) walks the tail of each resource's admitted queue
//! between rounds, prices every future remote read with the eq. (2)
//! estimator (`msr-predict`), and stages the ones whose predicted fetch
//! fits inside the predicted idle window before their chain is served.
//! Fetches run as a *background stream* on the resource — accounted on a
//! separate background cursor that overlaps the foreground cursor — and
//! land in a shared [`StagingCache`]; when a staged read reaches the head
//! of its queue it is served at memory speed instead of paying the remote
//! resource again. Planning, admission and serving all happen on the
//! dispatcher thread, and each resource's fetches execute inside the same
//! closure as its foreground batch, so the determinism contract (bitwise
//! identical per-session reports at any `MSR_THREADS`) is preserved with
//! prefetch on. A fetch that fails is dropped silently — the read falls
//! back to the normal on-demand path and the session never sees the error.

use crate::event::{EventQueue, PlanGate, Scratch};
use crate::program::{payload, SessionProgram};
use crate::report::{SchedReport, SessionReport, TenantReport};
use crate::wfq::WfqQueue;
use bytes::Bytes;
use msr_core::{
    placement, CoreError, CoreResult, DatasetSpec, MsrSystem, OverloadPolicy, Session, Tenant,
    TenantId,
};
use msr_lifecycle::{LifecycleEngine, TickTotals};
use msr_meta::{AccessMode, Location, RunId};
use msr_obs::{ops, Layer, Recorder};
use msr_predict::{fetch_estimate, profile_for, queue_wait, AccessSummary, ResourceProfile};
use msr_runtime::{
    staging_cache, superfile::DEFAULT_CACHE_LIMIT, Distribution, EngineRequest, IoReport,
    IoStrategy, RequestBody, RequestOutcome, RequestTag, StagingCache,
};
use msr_sim::{SimDuration, SimTime};
use msr_storage::{OpKind, OpenMode, StorageKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Fixed virtual cost of dispatching one batch to a resource (queue
/// bookkeeping, placement lookup). Contiguous requests served in one batch
/// share a single charge — the benefit batching exists to win.
pub fn dispatch_overhead() -> SimDuration {
    SimDuration::from_millis(2.0)
}

/// Longest contiguous run of one session's requests served in a single
/// batch. Bounds how long a bursty client can monopolize a resource.
pub const MAX_CHAIN: usize = 8;

/// Re-queue attempts per request before it is abandoned.
const MAX_ATTEMPTS: u32 = 3;

/// How many fired events between deferred-admission retries (and between
/// deadline-feasibility sweeps) in the event engine.
const DEFER_RETRY_EVERY: u64 = 8;

struct Admitted<'a> {
    id: u64,
    app: String,
    run: RunId,
    tenant: TenantId,
    session: Session<'a>,
    requests: VecDeque<EngineRequest>,
}

struct Queued {
    req: EngineRequest,
    submitted: SimTime,
    attempts: u32,
    /// eq. (1) predicted service time (seconds) on the request's current
    /// resource — the WFQ batch cost, the load board's backlog unit, and
    /// the deadline checker's remaining-work unit. Recomputed on requeue.
    est: f64,
}

/// Per-session accumulator while the queues drain.
struct Acc {
    reports: Vec<(u64, IoReport)>,
    contribs: Vec<Contrib>,
    bytes: u64,
    completed: SimTime,
    requeues: u32,
    errors: Vec<String>,
    cancelled: Option<String>,
}

/// One served request's timing contribution to its session's totals.
/// Float sums are order-sensitive, so contributions carry the position
/// the round engine would have applied them at — `(round, phase, kind)`,
/// where phase 0 is the inline staged serves and phase 1 the resource
/// results — and the finalizer folds them in that order. The event engine
/// applies outcomes in event-time order instead of round order; sorting
/// contributions (stably) by this key makes its per-session totals
/// bitwise identical to the round engine's.
struct Contrib {
    step: u64,
    phase: u8,
    kind: StorageKind,
    wait: SimDuration,
    io: SimDuration,
}

/// Whole-drain counters handed to the report finalizer.
struct DrainTotals {
    rounds: u64,
    batches: u64,
    max_batch: usize,
    lifecycle: TickTotals,
}

/// One planned background fetch: enough of the future read to execute it
/// against the resource without touching the queues again.
struct PlannedFetch {
    path: String,
    dist: Distribution,
    strategy: IoStrategy,
    /// Queue position at plan time — the staging cache's furthest-next-use
    /// eviction tag.
    next_use: u64,
}

/// A resource's admitted fetch work for one round, starting on the
/// background stream at `start`.
struct RoundPlan {
    start: SimTime,
    fetches: Vec<PlannedFetch>,
}

type FetchOutcome = Result<(Vec<u8>, IoReport), String>;

/// One round task's result: the resource it ran on, the foreground batch
/// outcome, and each planned fetch's outcome in plan order.
type RoundResult = (StorageKind, BatchResult, Vec<(PlannedFetch, FetchOutcome)>);

/// Run-local read-ahead state: the shared staging cache, one background
/// stream cursor per resource, and the admission bookkeeping. Everything
/// here lives on the dispatcher thread; the only work that leaves it is
/// the fetches themselves, which execute inside the owning resource's
/// round closure (after its foreground batch, in plan order), so the
/// per-resource operation order — and with it every seeded jitter stream —
/// is independent of the worker count.
struct Prefetcher {
    cache: StagingCache,
    bg_cursors: BTreeMap<StorageKind, SimTime>,
    /// Successfully staged paths and the virtual time their fetch landed.
    ready: BTreeMap<String, SimTime>,
    /// Every path ever planned (in flight, staged, or failed) — a failed
    /// fetch is not retried in a loop; the read just runs on demand.
    planned: BTreeSet<String>,
    /// Paths whose idle window was too small. Windows only shrink as the
    /// queue ahead drains, so a decline is final and is counted once.
    declined: BTreeSet<String>,
    /// eq. (2) profiles per resource/op, synthesized once (measured PerfDb
    /// rows win when the database is populated).
    profiles: BTreeMap<(StorageKind, OpKind), ResourceProfile>,
    staged: u64,
    hits: u64,
    waste: u64,
    declines: u64,
}

impl Prefetcher {
    fn new() -> Prefetcher {
        Prefetcher {
            cache: staging_cache(DEFAULT_CACHE_LIMIT),
            bg_cursors: BTreeMap::new(),
            ready: BTreeMap::new(),
            planned: BTreeSet::new(),
            declined: BTreeSet::new(),
            profiles: BTreeMap::new(),
            staged: 0,
            hits: 0,
            waste: 0,
            declines: 0,
        }
    }

    /// Predicted service time of `req` on `kind` — the eq. (2) dump time
    /// against the resource's profile. Used for both sides of the
    /// admission inequality. Deterministic: profiles are model-derived
    /// (or measured), never sampled from the live jitter streams.
    fn estimate(&mut self, sys: &MsrSystem, kind: StorageKind, req: &EngineRequest) -> SimDuration {
        let op = match req.body {
            RequestBody::Write { .. } => OpKind::Write,
            RequestBody::Read => OpKind::Read,
        };
        let profile = self.profiles.entry((kind, op)).or_insert_with(|| {
            let res = sys.resource(kind).expect("queued on a registered kind");
            profile_for(sys.predictor().map(|p| &p.db), &res, op)
        });
        // Chunked datasets are priced at their learned post-dedup size
        // (ratio 1.0 — a bitwise no-op — until the plane reports one).
        let access = AccessSummary::of(&req.dist).scaled(sys.predicted_ratio(&req.dataset));
        fetch_estimate(profile, req.strategy, &access)
    }

    /// Walk `q`'s tail with the eq. (2) estimator and admit every remote
    /// read whose predicted fetch fits the predicted idle window before
    /// its own service: `max(bg, fg) + t_fetch ≤ fg + Σ t_est(ahead)`.
    /// Only reads whose file exists *now* are candidates (a fetch must
    /// never observe a write that has not been served), and a read with a
    /// queued write to the same path ahead of it is skipped outright.
    ///
    /// The second return value is the number of *undecided* candidates the
    /// walk saw — reads with no final plan/decline verdict yet (their write
    /// is still ahead, or their file does not exist yet). It is `None`
    /// when the walk was skipped outright (wrong kind, empty queue, open
    /// circuit). The event engine's [`PlanGate`](crate::event::PlanGate)
    /// uses it to skip provably side-effect-free walks: decisions are
    /// final, so once nothing is undecided the walk can change nothing.
    fn plan(
        &mut self,
        sys: &MsrSystem,
        rec: &Recorder,
        kind: StorageKind,
        q: &WfqQueue<Queued>,
        fg_cursor: SimTime,
    ) -> (Option<RoundPlan>, Option<usize>) {
        if !matches!(kind, StorageKind::RemoteDisk | StorageKind::RemoteTape)
            || q.is_empty()
            || !sys.health.allows(kind)
        {
            return (None, None);
        }
        let Some(res) = sys.resource(kind) else {
            return (None, None);
        };
        let start = self
            .bg_cursors
            .get(&kind)
            .copied()
            .unwrap_or(fg_cursor)
            .max(fg_cursor);
        let mut bg_avail = start;
        let mut ahead = SimDuration::ZERO;
        let mut writes_ahead: BTreeSet<&str> = BTreeSet::new();
        let mut fetches = Vec::new();
        let mut undecided = 0usize;
        for (idx, item) in q.iter().enumerate() {
            let req = &item.req;
            let est = self.estimate(sys, kind, req);
            if let RequestBody::Write { .. } = req.body {
                writes_ahead.insert(req.path.as_str());
            } else if !self.ready.contains_key(&req.path)
                && !self.planned.contains(&req.path)
                && !self.declined.contains(&req.path)
            {
                if !writes_ahead.contains(req.path.as_str()) && res.lock().exists(&req.path) {
                    if bg_avail + est <= fg_cursor + ahead {
                        self.planned.insert(req.path.clone());
                        bg_avail += est;
                        fetches.push(PlannedFetch {
                            path: req.path.clone(),
                            dist: req.dist,
                            strategy: req.strategy,
                            next_use: idx as u64,
                        });
                    } else {
                        // Too close to its own service: fetching would push
                        // the read later than just serving it on demand.
                        // Final — the window ahead of this path only
                        // shrinks.
                        self.declined.insert(req.path.clone());
                        self.declines += 1;
                        rec.count(
                            Layer::Sched,
                            &kind.to_string(),
                            ops::PREFETCH_DECLINE,
                            fg_cursor,
                            1.0,
                        );
                    }
                } else {
                    // Read-after-write within the drain (or the file is
                    // not on the resource yet): no verdict until the
                    // blocking write lands.
                    undecided += 1;
                }
            }
            ahead += est;
        }
        (
            (!fetches.is_empty()).then_some(RoundPlan { start, fetches }),
            Some(undecided),
        )
    }

    /// Pop the staged-ready run at the head of `q` — reads whose fetch has
    /// landed by `cursor`, chained under the same rule as a normal batch —
    /// into `out` (cleared by the caller; reused by the event engine).
    fn pop_staged_run_into(
        &mut self,
        q: &mut VecDeque<Queued>,
        cursor: SimTime,
        out: &mut Vec<Queued>,
    ) {
        loop {
            let ready = out.len() < MAX_CHAIN
                && q.front().is_some_and(|item| {
                    matches!(item.req.body, RequestBody::Read)
                        && self.ready.get(&item.req.path).is_some_and(|&t| t <= cursor)
                        && self.cache.lock().contains(&item.req.path)
                        && out
                            .last()
                            .is_none_or(|prev| prev.req.chains_with(&item.req))
                });
            if !ready {
                break;
            }
            out.push(q.pop_front().unwrap());
        }
    }

    /// [`Prefetcher::pop_staged_run_into`], allocating the batch (the
    /// round-based reference engine's calling convention).
    fn pop_staged_run(&mut self, q: &mut VecDeque<Queued>, cursor: SimTime) -> Vec<Queued> {
        let mut batch = Vec::new();
        self.pop_staged_run_into(q, cursor, &mut batch);
        batch
    }

    /// Take a staged buffer for serving, consuming the entry.
    fn take(&mut self, path: &str) -> Option<Bytes> {
        self.ready.remove(path);
        let mut cache = self.cache.lock();
        let data = cache.get(path);
        cache.invalidate(path);
        data
    }

    /// A foreground serve touched `path`: drop any staged copy. A write
    /// makes the copy stale; an on-demand read means the fetch arrived too
    /// late — either way the staged bytes were wasted. Returns whether a
    /// previously *planned* path was re-opened for future fetching (the
    /// event engine must re-walk its plan gate when that happens).
    fn note_foreground(
        &mut self,
        rec: &Recorder,
        kind: StorageKind,
        req: &EngineRequest,
        at: SimTime,
    ) -> bool {
        let was_ready = self.ready.remove(&req.path).is_some();
        let cached = {
            let mut cache = self.cache.lock();
            let hit = cache.contains(&req.path);
            cache.invalidate(&req.path);
            hit
        };
        let mut reopened = false;
        if was_ready || cached {
            self.waste += 1;
            rec.count(
                Layer::Sched,
                &kind.to_string(),
                ops::PREFETCH_WASTE,
                at,
                1.0,
            );
            if matches!(req.body, RequestBody::Write { .. }) {
                // Overwritten: the path may be fetched again for a later
                // read once the new bytes are on the resource.
                reopened = self.planned.remove(&req.path);
            }
        }
        reopened
    }

    /// Fold one resource's completed fetches into the staging cache and
    /// advance its background cursor by the *measured* fetch times.
    fn apply_fetches(
        &mut self,
        rec: &Recorder,
        kind: StorageKind,
        plan_start: SimTime,
        results: Vec<(PlannedFetch, FetchOutcome)>,
    ) {
        let comp = kind.to_string();
        let mut t = plan_start;
        for (f, result) in results {
            match result {
                Ok((bytes, report)) => {
                    let began = t;
                    t += report.elapsed;
                    rec.span(
                        Layer::Sched,
                        &comp,
                        ops::PREFETCH,
                        began,
                        report.elapsed,
                        report.bytes,
                    );
                    if self
                        .cache
                        .lock()
                        .put_prioritized(&f.path, Bytes::from(bytes), f.next_use)
                    {
                        self.ready.insert(f.path, t);
                        self.staged += 1;
                    } else {
                        // The cache declined (admitting would evict an
                        // entry needed sooner): the fetch was wasted.
                        self.waste += 1;
                        rec.count(Layer::Sched, &comp, ops::PREFETCH_WASTE, t, 1.0);
                    }
                }
                Err(e) => {
                    // Mid-prefetch fault: drop the fetch and let the read
                    // fall back to on-demand service. No breaker failure is
                    // recorded — the session never asked for this work.
                    rec.instant(
                        Layer::Sched,
                        &comp,
                        ops::PREFETCH,
                        t,
                        &format!("fetch {} failed: {e}", f.path),
                    );
                }
            }
        }
        let cur = self.bg_cursors.entry(kind).or_insert(t);
        *cur = (*cur).max(t);
    }
}

/// eq. (2) service-time estimator shared by admission pricing, the load
/// board's backlog accounting, WFQ batch costs and the deadline checker.
/// Profiles are synthesized once per `(resource, op)` (measured PerfDb
/// rows win when the database is populated) and never sampled from the
/// live jitter streams, so every estimate is deterministic.
struct Estimator {
    profiles: BTreeMap<(StorageKind, OpKind), ResourceProfile>,
}

impl Estimator {
    fn new() -> Estimator {
        Estimator {
            profiles: BTreeMap::new(),
        }
    }

    /// Predicted service time (seconds) of one `op` with `strategy` over
    /// `dist` on `kind`. `ratio` scales the priced bytes — the learned
    /// post-dedup/post-compression figure for chunked datasets, `1.0`
    /// (a bitwise no-op) for raw ones.
    fn cost_op(
        &mut self,
        sys: &MsrSystem,
        kind: StorageKind,
        op: OpKind,
        strategy: IoStrategy,
        dist: &Distribution,
        ratio: f64,
    ) -> f64 {
        let profile = self.profiles.entry((kind, op)).or_insert_with(|| {
            let res = sys.resource(kind).expect("priced on a registered kind");
            profile_for(sys.predictor().map(|p| &p.db), &res, op)
        });
        fetch_estimate(profile, strategy, &AccessSummary::of(dist).scaled(ratio)).as_secs()
    }

    /// Predicted service time (seconds) of `req` on `kind`.
    fn cost(&mut self, sys: &MsrSystem, kind: StorageKind, req: &EngineRequest) -> f64 {
        let op = match req.body {
            RequestBody::Write { .. } => OpKind::Write,
            RequestBody::Read => OpKind::Read,
        };
        let ratio = sys.predicted_ratio(&req.dataset);
        self.cost_op(sys, kind, op, req.strategy, &req.dist, ratio)
    }
}

/// Per-tenant overload-machinery counters, folded into the report's
/// [`TenantReport`]s.
#[derive(Default, Clone, Copy)]
struct TenantCounters {
    shed: u64,
    deferred: u64,
    expired: u64,
    cancelled: u64,
}

/// A program parked in the admission backpressure queue: its tenant's
/// predicted wait exceeded the SLO under a `Defer` overload policy. It is
/// re-priced as the drain progresses and admitted once the predicted wait
/// drops, or expired when `expires` passes unadmitted.
struct Deferred {
    program: SessionProgram,
    tenant: TenantId,
    expires: SimTime,
}

/// What one program would add to the system, priced with eq. (2) before
/// any catalog state is touched: the admission controller's input.
#[derive(Default)]
struct Pricing {
    requests: usize,
    bytes: u64,
    est_secs: f64,
    kinds: BTreeSet<StorageKind>,
}

/// The admission controller's verdict on one program.
enum GateVerdict {
    Admit,
    Shed(CoreError),
    Defer { ttl: SimDuration },
}

/// The scheduler. Admit programs, then [`run`](Scheduler::run) to drain.
pub struct Scheduler<'a> {
    sys: &'a MsrSystem,
    rec: Recorder,
    admitted: Vec<Admitted<'a>>,
    /// Current resource of each `(session, dataset)`, updated on requeue.
    locations: BTreeMap<(u64, String), StorageKind>,
    specs: BTreeMap<(u64, String), DatasetSpec>,
    prefetch: bool,
    lifecycle: Option<LifecycleEngine>,
    lifecycle_every: u64,
    estimator: Estimator,
    /// Admission backpressure queue, in defer order.
    deferred: VecDeque<Deferred>,
    tcounts: BTreeMap<TenantId, TenantCounters>,
    /// Session id -> tenant, for serve/requeue/cancel accounting.
    tenants_of: BTreeMap<u64, TenantId>,
    /// Tenant names and WFQ weights captured at admission time.
    tenant_names: BTreeMap<TenantId, String>,
    weights: BTreeMap<TenantId, f64>,
    /// Per-session completion deadlines (virtual time from admission).
    deadlines: BTreeMap<u64, SimDuration>,
}

impl<'a> Scheduler<'a> {
    /// A scheduler over `sys`. Nothing is queued until programs are
    /// admitted. Prediction-driven read-ahead defaults to the
    /// `MSR_PREFETCH` environment variable (`1`/`on`/`true`), off when
    /// unset.
    pub fn new(sys: &'a MsrSystem) -> Scheduler<'a> {
        let prefetch = std::env::var("MSR_PREFETCH").is_ok_and(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "on" || v == "true"
        });
        Scheduler {
            sys,
            rec: sys.obs_recorder(),
            admitted: Vec::new(),
            locations: BTreeMap::new(),
            specs: BTreeMap::new(),
            prefetch,
            lifecycle: None,
            lifecycle_every: 4,
            estimator: Estimator::new(),
            deferred: VecDeque::new(),
            tcounts: BTreeMap::new(),
            tenants_of: BTreeMap::new(),
            tenant_names: BTreeMap::new(),
            weights: BTreeMap::new(),
            deadlines: BTreeMap::new(),
        }
    }

    /// Attach a lifecycle engine: between dispatch rounds (every
    /// [`lifecycle_every`](Scheduler::lifecycle_every) rounds, on the
    /// dispatcher thread) it prunes, demotes, promotes and vaults datasets
    /// whose runs are *not* admitted here — in-flight data is never moved
    /// under a queued request. Ticks derive from a single catalog snapshot
    /// in fixed order, so attaching an engine keeps reports bitwise
    /// identical at any `MSR_THREADS`.
    pub fn with_lifecycle(mut self, engine: LifecycleEngine) -> Self {
        self.lifecycle = Some(engine);
        self
    }

    /// Tick the attached lifecycle engine every `n` dispatch rounds
    /// (default 4; clamped to at least 1). No effect without
    /// [`with_lifecycle`](Scheduler::with_lifecycle).
    pub fn lifecycle_every(mut self, n: u64) -> Self {
        self.lifecycle_every = n.max(1);
        self
    }

    /// Enable or disable prediction-driven read-ahead for this run,
    /// overriding `MSR_PREFETCH`.
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// Whether read-ahead is enabled for this run.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch
    }

    /// Sessions admitted so far.
    pub fn sessions(&self) -> usize {
        self.admitted.len()
    }

    /// Programs currently parked in the admission backpressure queue.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Admit one program through the overload controller. The program is
    /// first *priced* — eq. (2) service estimates per request, summed
    /// against the tenant's quotas and the live load board — before any
    /// catalog state is touched:
    ///
    /// - over quota, or over the tenant's SLO with a [`OverloadPolicy::Shed`]
    ///   policy: the program is **shed** with a typed error
    ///   ([`CoreError::QuotaExceeded`] / [`CoreError::Rejected`]) and
    ///   nothing is opened;
    /// - over the SLO with a [`OverloadPolicy::Defer`] policy and room in
    ///   the backpressure queue: the program is **parked** (`Ok(None)`)
    ///   and retried as the drain progresses, expiring after its TTL;
    /// - otherwise it is **admitted**: its catalog session opens, its
    ///   datasets are placed (scored AUTO placement sees the current queue
    ///   depths), and it expands into tagged requests accounted on the
    ///   system's load board. Returns `Ok(Some(session_id))`.
    pub fn admit(&mut self, program: SessionProgram) -> CoreResult<Option<u64>> {
        let (tid, tenant) = self
            .sys
            .tenants
            .resolve_or_register(program.tenant.as_deref());
        self.tenant_names.insert(tid, tenant.name.clone());
        self.weights.insert(tid, tenant.weight);
        match self.admission_gate(&program, tid, &tenant)? {
            GateVerdict::Admit => Ok(Some(self.open_and_expand(program, tid)?)),
            GateVerdict::Shed(e) => {
                self.tcounts.entry(tid).or_default().shed += 1;
                self.rec.instant(
                    Layer::Sched,
                    &tenant.name,
                    ops::ADMIT_SHED,
                    self.sys.clock.now(),
                    &format!("{}: {e}", program.app),
                );
                Err(e)
            }
            GateVerdict::Defer { ttl } => {
                self.tcounts.entry(tid).or_default().deferred += 1;
                let now = self.sys.clock.now();
                self.rec.instant(
                    Layer::Sched,
                    &tenant.name,
                    ops::ADMIT_DEFER,
                    now,
                    &format!("{}: parked for up to {:.3}s", program.app, ttl.as_secs()),
                );
                self.deferred.push_back(Deferred {
                    program,
                    tenant: tid,
                    expires: now + ttl,
                });
                Ok(None)
            }
        }
    }

    /// Price `program` with eq. (2) without touching catalog state: how
    /// many requests it would queue, the bytes it would put in flight, the
    /// predicted service seconds it would add, and the resources it would
    /// land on. Placement is resolved with the same pure scoring the later
    /// open uses, so the admission decision prices what admission would do.
    fn price(&mut self, program: &SessionProgram) -> CoreResult<Pricing> {
        let sys = self.sys;
        let mut pricing = Pricing::default();
        for spec in &program.datasets {
            if spec.frequency == 0 {
                continue;
            }
            let dist = Distribution::new(spec.dims, spec.etype.size(), spec.pattern, program.grid)?;
            let run_bytes = spec.run_bytes(program.iterations);
            let Some(kind) = placement::resolve(sys, spec, &dist, run_bytes)? else {
                continue;
            };
            pricing.kinds.insert(kind);
            let dumps = (0..=program.iterations)
                .filter(|i| i.is_multiple_of(spec.frequency))
                .count();
            let reads = if program.readbacks > 0 {
                (program.readbacks as usize).min(dumps)
            } else {
                usize::from(program.readback)
            };
            pricing.requests += dumps + reads;
            pricing.bytes += (dumps + reads) as u64 * spec.snapshot_bytes();
            let ratio = sys.predicted_ratio(&spec.name);
            pricing.est_secs += dumps as f64
                * self
                    .estimator
                    .cost_op(sys, kind, OpKind::Write, spec.strategy, &dist, ratio)
                + reads as f64
                    * self
                        .estimator
                        .cost_op(sys, kind, OpKind::Read, spec.strategy, &dist, ratio);
        }
        Ok(pricing)
    }

    /// The admission controller: quotas first, then the eq. (2) SLO check
    /// — predicted queue wait on the program's most backlogged target
    /// resource against the tenant's SLO.
    fn admission_gate(
        &mut self,
        program: &SessionProgram,
        tid: TenantId,
        tenant: &Tenant,
    ) -> CoreResult<GateVerdict> {
        let pricing = self.price(program)?;
        let usage = self.sys.load.tenant_usage(tid);
        if let Some(cap) = tenant.quota.max_queued_requests {
            if usage.queued + pricing.requests > cap {
                return Ok(GateVerdict::Shed(CoreError::QuotaExceeded {
                    tenant: tenant.name.clone(),
                    resource: "queued requests",
                    used: usage.queued as u64,
                    requested: pricing.requests as u64,
                    limit: cap as u64,
                }));
            }
        }
        if let Some(cap) = tenant.quota.max_bytes_in_flight {
            if usage.bytes + pricing.bytes > cap {
                return Ok(GateVerdict::Shed(CoreError::QuotaExceeded {
                    tenant: tenant.name.clone(),
                    resource: "bytes in flight",
                    used: usage.bytes,
                    requested: pricing.bytes,
                    limit: cap,
                }));
            }
        }
        if let Some(cap) = tenant.quota.max_predicted_secs {
            if usage.predicted_secs + pricing.est_secs > cap {
                return Ok(GateVerdict::Shed(CoreError::QuotaExceeded {
                    tenant: tenant.name.clone(),
                    resource: "predicted seconds",
                    used: usage.predicted_secs.ceil() as u64,
                    requested: pricing.est_secs.ceil() as u64,
                    limit: cap.ceil() as u64,
                }));
            }
        }
        if let Some(slo) = tenant.slo {
            let mut wait = SimDuration::ZERO;
            for &kind in &pricing.kinds {
                let backlog = SimDuration::from_secs(self.sys.load.predicted_backlog(kind));
                let w = queue_wait(
                    backlog,
                    self.sys.load.depth(kind),
                    MAX_CHAIN,
                    dispatch_overhead(),
                );
                wait = wait.max(w);
            }
            if wait > slo {
                let reject = || CoreError::Rejected {
                    tenant: tenant.name.clone(),
                    predicted_wait: wait,
                    slo,
                };
                return Ok(match tenant.overload {
                    OverloadPolicy::Shed => GateVerdict::Shed(reject()),
                    OverloadPolicy::Defer { max_deferred, ttl } => {
                        let parked = self.deferred.iter().filter(|d| d.tenant == tid).count();
                        if parked >= max_deferred {
                            GateVerdict::Shed(reject())
                        } else {
                            GateVerdict::Defer { ttl }
                        }
                    }
                });
            }
        }
        Ok(GateVerdict::Admit)
    }

    /// Open the program's catalog session, place its datasets, expand it
    /// into tagged requests and account them (depth, predicted backlog,
    /// tenant usage) on the system's load board.
    fn open_and_expand(&mut self, program: SessionProgram, tid: TenantId) -> CoreResult<u64> {
        let id = self.admitted.len() as u64;
        let mut session = self
            .sys
            .session()
            .app(&program.app)
            .user(&program.user)
            .iterations(program.iterations)
            .grid(program.grid)
            .build()?;
        for spec in &program.datasets {
            session.open(spec.clone())?;
        }
        let run = session.run_id();
        for d in session.report().datasets {
            if let Some(kind) = d.location {
                self.locations.insert((id, d.name), kind);
            }
        }
        for spec in &program.datasets {
            self.specs.insert((id, spec.name.clone()), spec.clone());
        }

        let mut requests = VecDeque::new();
        let mut seq = 0u64;
        // Dataset-major expansion keeps one dataset's dumps at consecutive
        // sequence numbers, which is what makes them batchable.
        for spec in &program.datasets {
            if !self.locations.contains_key(&(id, spec.name.clone())) || spec.frequency == 0 {
                continue;
            }
            let dist = Distribution::new(spec.dims, spec.etype.size(), spec.pattern, program.grid)?;
            let mode = match spec.amode {
                AccessMode::Create => OpenMode::Create,
                AccessMode::OverWrite => OpenMode::OverWrite,
            };
            let mut paths = Vec::new();
            for iter in 0..=program.iterations {
                if !iter.is_multiple_of(spec.frequency) {
                    continue;
                }
                let path = dump_path(&program.app, run, spec, iter);
                paths.push(path.clone());
                let data = payload(id, &spec.name, iter, spec.snapshot_bytes() as usize);
                requests.push_back(EngineRequest {
                    tag: RequestTag { session: id, seq },
                    dataset: spec.name.clone(),
                    path,
                    dist,
                    strategy: spec.strategy,
                    ingest: spec.ingest,
                    body: RequestBody::Write { data, mode },
                });
                seq += 1;
            }
            // Consumer reads at the end of the program. `readbacks` opens a
            // sequence hole first so the reads chain with each other and
            // not with the dumps — standalone read chains are what the
            // prefetcher can overlap with other sessions' writes.
            let consumer_reads = if program.readbacks > 0 {
                seq += 1;
                program.readbacks as usize
            } else {
                usize::from(program.readback)
            };
            for path in paths.into_iter().take(consumer_reads) {
                requests.push_back(EngineRequest {
                    tag: RequestTag { session: id, seq },
                    dataset: spec.name.clone(),
                    path,
                    dist,
                    strategy: spec.strategy,
                    // Reads self-describe through the registered manifest;
                    // carrying the spec keeps report lines symmetrical.
                    ingest: spec.ingest,
                    body: RequestBody::Read,
                });
                seq += 1;
            }
        }

        let now = self.sys.clock.now();
        let mut per_kind: BTreeMap<StorageKind, usize> = BTreeMap::new();
        let mut tenant_bytes = 0u64;
        let mut tenant_secs = 0.0f64;
        for req in &requests {
            let kind = self.locations[&(id, req.dataset.clone())];
            *per_kind.entry(kind).or_insert(0) += 1;
            let est = self.estimator.cost(self.sys, kind, req);
            self.sys.load.backlog_enqueued(kind, est);
            tenant_bytes += req.bytes();
            tenant_secs += est;
        }
        self.sys
            .load
            .tenant_enqueued(tid, requests.len(), tenant_bytes, tenant_secs);
        for (kind, n) in per_kind {
            let depth = self.sys.load.enqueued(kind, n);
            self.rec.count(
                Layer::Sched,
                &kind.to_string(),
                ops::QUEUE_DEPTH,
                now,
                depth as f64,
            );
        }
        self.rec.instant(
            Layer::Sched,
            &program.app,
            ops::SESSION_ADMIT,
            now,
            &format!("session {id}: {} requests, run{}", requests.len(), run.0),
        );

        self.tenants_of.insert(id, tid);
        if let Some(d) = program.deadline {
            self.deadlines.insert(id, d);
        }
        self.admitted.push(Admitted {
            id,
            app: program.app.clone(),
            run,
            tenant: tid,
            session,
            requests,
        });
        Ok(id)
    }

    /// Drain every admitted session's requests and return the run's
    /// accounting. Consumes the scheduler: the catalog sessions are
    /// finalized (disconnect costs charged) on the way out, and the global
    /// clock is advanced to the scheduled makespan.
    ///
    /// Dispatch is discrete-event: a binary min-heap holds one pending
    /// completion event per resource (keyed `(SimTime, StorageKind, seq)`,
    /// see [`crate::event`]), and each fired event serves exactly one
    /// batch — a staged-ready run or a chained queue head — on that
    /// resource, plans and executes its background fetches, then re-arms
    /// the resource at its advanced cursor. Sessions wake lazily (a
    /// session is touched only when the resource at its queue head comes
    /// free), so one dispatch step is O(log resources + batch) no matter
    /// how many sessions are admitted. In fault-free drains the per-
    /// resource operation sequence is identical to the retired round loop
    /// ([`Scheduler::run_round_based`]), so reports are bitwise identical
    /// to it — and, as before, independent of `MSR_THREADS`.
    pub fn run(mut self) -> CoreResult<SchedReport> {
        let sys = self.sys;
        let start = sys.clock.now();
        let mut queues = self.build_queues(start);
        let mut cursors: BTreeMap<StorageKind, SimTime> =
            queues.keys().map(|&k| (k, start)).collect();
        let mut accs: BTreeMap<u64, Acc> = self
            .admitted
            .iter()
            .map(|a| {
                (
                    a.id,
                    Acc {
                        reports: Vec::new(),
                        contribs: Vec::new(),
                        bytes: 0,
                        completed: start,
                        requeues: 0,
                        errors: Vec::new(),
                        cancelled: None,
                    },
                )
            })
            .collect();

        // Per-resource dispatch-step counts. The round engine's global
        // `rounds` equals the longest per-resource step sequence (every
        // resource with pending work took one step per round until its
        // queue drained), so `max(steps)` reproduces it bitwise.
        let mut steps: BTreeMap<StorageKind, u64> = BTreeMap::new();
        let mut batches = 0u64;
        let mut max_batch = 0usize;
        let mut prefetcher = self.prefetch.then(Prefetcher::new);
        let mut runs: BTreeMap<u64, RunId> = self.admitted.iter().map(|a| (a.id, a.run)).collect();
        let mut busy: BTreeSet<RunId> = runs.values().copied().collect();
        let mut lifecycle_totals = TickTotals::default();

        // Deadline bookkeeping: per-session predicted service seconds
        // still queued, and each deadline as an absolute virtual instant.
        // Only sessions that declared a deadline are tracked.
        let mut remaining: BTreeMap<u64, f64> = BTreeMap::new();
        if !self.deadlines.is_empty() {
            for q in queues.values() {
                for item in q.iter() {
                    if self.deadlines.contains_key(&item.req.tag.session) {
                        *remaining.entry(item.req.tag.session).or_default() += item.est;
                    }
                }
            }
        }
        let mut deadlines_abs: BTreeMap<u64, SimTime> = self
            .deadlines
            .iter()
            .map(|(&id, &d)| (id, start + d))
            .collect();

        let mut events = EventQueue::new();
        let mut armed: BTreeSet<StorageKind> = BTreeSet::new();
        let mut gates: BTreeMap<StorageKind, PlanGate> = BTreeMap::new();
        let mut scratch: Scratch<Queued, (Queued, RequestOutcome)> = Scratch::new();
        let mut fired = 0u64;

        for (&kind, q) in queues.iter() {
            if !q.is_empty() {
                events.push(start, kind);
                armed.insert(kind);
            }
        }

        'drain: loop {
            while let Some((_at, kind)) = events.pop() {
                armed.remove(&kind);

                // Pop phase: select the WFQ lane whose head batch has the
                // smallest start tag, then pop a staged-ready run off that
                // lane's head if the prefetcher has one landed, otherwise one
                // chained batch. The popped batch's eq. (2) cost advances the
                // lane's virtual finish tag — weighted-fair arbitration.
                scratch.batch.clear();
                let mut staged = false;
                {
                    let q = queues.entry(kind).or_default();
                    if let Some(tenant) = q.select() {
                        let lane = q.lane_mut(tenant);
                        if let Some(p) = prefetcher.as_mut() {
                            let cursor = cursors.get(&kind).copied().unwrap_or(start);
                            p.pop_staged_run_into(lane, cursor, &mut scratch.batch);
                            staged = !scratch.batch.is_empty();
                        }
                        if !staged {
                            if let Some(head) = lane.pop_front() {
                                scratch.batch.push(head);
                                while scratch.batch.len() < MAX_CHAIN
                                    && lane.front().is_some_and(|n| {
                                        scratch.batch.last().unwrap().req.chains_with(&n.req)
                                    })
                                {
                                    scratch.batch.push(lane.pop_front().unwrap());
                                }
                            }
                        }
                        if !scratch.batch.is_empty() {
                            let cost: f64 = scratch.batch.iter().map(|i| i.est).sum();
                            q.commit(tenant, cost);
                        }
                    }
                }

                if !scratch.batch.is_empty() {
                    // This resource's step count is its round number under the
                    // legacy engine — the key that orders its contributions.
                    let step = {
                        let s = steps.entry(kind).or_insert(0);
                        *s += 1;
                        *s
                    };
                    fired += 1;

                    if staged {
                        // Staged-serve step: plan against the post-pop queue
                        // with the pre-application foreground cursor (exactly
                        // what the round engine's plan phase saw), execute the
                        // plan's fetches on the resource, then serve the
                        // staged batch from memory and land the fetches.
                        let fg = cursors.get(&kind).copied().unwrap_or(start);
                        let plan = self.plan_step(&mut prefetcher, &mut gates, &queues, kind, fg);
                        let plan_start = plan.as_ref().map(|pl| pl.start);
                        let fetched = self.execute_fetches(kind, plan);

                        let p = prefetcher.as_mut().expect("staged batches imply prefetch");
                        let comp = kind.to_string();
                        let cursor = cursors.entry(kind).or_insert(start);
                        let batch_start = *cursor;
                        *cursor += dispatch_overhead();
                        let mut batch_bytes = 0u64;
                        let mut n = 0usize;
                        let mut leftovers = Vec::new();
                        for q in scratch.batch.drain(..) {
                            let outcome = p
                                .take(&q.req.path)
                                .and_then(|data| sys.engine.staged_read(&comp, &q.req, &data).ok());
                            let Some(outcome) = outcome else {
                                // The staged copy vanished under us: back to
                                // the queue head for on-demand service.
                                leftovers.push(q);
                                continue;
                            };
                            let report = outcome.into_report();
                            let wait = cursor.since(q.submitted);
                            self.rec.span(
                                Layer::Sched,
                                &comp,
                                ops::SCHED_WAIT,
                                q.submitted,
                                wait,
                                report.bytes,
                            );
                            *cursor += report.elapsed;
                            batch_bytes += report.bytes;
                            n += 1;
                            p.hits += 1;
                            self.rec
                                .count(Layer::Sched, &comp, ops::PREFETCH_HIT, *cursor, 1.0);
                            let depth = sys.load.dequeued(kind, 1);
                            self.rec.count(
                                Layer::Sched,
                                &comp,
                                ops::QUEUE_DEPTH,
                                *cursor,
                                depth as f64,
                            );
                            sys.load.backlog_dequeued(kind, q.est);
                            let tid = self
                                .tenants_of
                                .get(&q.req.tag.session)
                                .copied()
                                .unwrap_or_default();
                            sys.load.tenant_dequeued(tid, 1, q.req.bytes(), q.est);
                            if let Some(r) = remaining.get_mut(&q.req.tag.session) {
                                *r -= q.est;
                            }
                            self.note_served(
                                runs[&q.req.tag.session],
                                &q.req,
                                *cursor,
                                report.bytes,
                            );
                            let acc = accs.get_mut(&q.req.tag.session).expect("admitted session");
                            acc.reports.push((q.req.tag.seq, report.clone()));
                            acc.contribs.push(Contrib {
                                step,
                                phase: 0,
                                kind,
                                wait,
                                io: report.elapsed,
                            });
                            acc.bytes += report.bytes;
                            acc.completed = acc.completed.max(*cursor);
                        }
                        if n > 0 {
                            batches += 1;
                            max_batch = max_batch.max(n);
                            let dur = cursor.since(batch_start);
                            self.rec.span(
                                Layer::Sched,
                                &comp,
                                ops::SCHED_DISPATCH,
                                batch_start,
                                dur,
                                batch_bytes,
                            );
                        }
                        if !leftovers.is_empty() {
                            let q = queues.entry(kind).or_default();
                            for item in leftovers.into_iter().rev() {
                                let tid = self
                                    .tenants_of
                                    .get(&item.req.tag.session)
                                    .copied()
                                    .unwrap_or_default();
                                q.push_front(tid, item);
                            }
                        }
                        if !fetched.is_empty() {
                            let fetch_count = fetched.len();
                            let plan_start =
                                plan_start.expect("planned fetches record their start");
                            p.apply_fetches(&self.rec, kind, plan_start, fetched);
                            sys.load.bg_dequeued(kind, fetch_count);
                        }
                    } else if !sys.health.allows(kind) {
                        // Open circuit: never dispatch to the resource — the
                        // whole batch (and the rest of its datasets' queues)
                        // drains to fallback resources. No plan either: the
                        // planner refuses unhealthy resources.
                        let batch = std::mem::take(&mut scratch.batch);
                        self.requeue(kind, batch, "circuit open", &mut queues, &mut accs);
                        for g in gates.values_mut() {
                            g.dirty = true;
                        }
                    } else {
                        // Normal step: plan fetches, execute the foreground
                        // batch inline, then the fetches, in plan order — the
                        // same per-resource op order the round engine's pool
                        // closure used, so every seeded jitter stream draws
                        // identically.
                        let fg = cursors.get(&kind).copied().unwrap_or(start);
                        let plan = self.plan_step(&mut prefetcher, &mut gates, &queues, kind, fg);
                        let plan_start = plan.as_ref().map(|pl| pl.start);

                        let res = sys.resource(kind).expect("placed on registered kind");
                        scratch.served.clear();
                        scratch.unserved.clear();
                        let mut error: Option<String> = None;
                        {
                            let mut pending = scratch.batch.drain(..);
                            for q in pending.by_ref() {
                                match sys.engine.execute(&res, &q.req) {
                                    Ok(outcome) => scratch.served.push((q, outcome)),
                                    Err(e) => {
                                        error = Some(CoreError::from(e).to_string());
                                        scratch.unserved.push(q);
                                        break;
                                    }
                                }
                            }
                            for q in pending {
                                scratch.unserved.push(q);
                            }
                        }
                        let fetched = self.execute_fetches(kind, plan);

                        // Apply the outcomes: one dispatch charge per batch,
                        // then each report advances the resource cursor.
                        let cursor = cursors.entry(kind).or_insert(start);
                        let batch_start = *cursor;
                        if !scratch.served.is_empty()
                            || !scratch.unserved.is_empty()
                            || error.is_some()
                        {
                            *cursor += dispatch_overhead();
                        }
                        let mut batch_bytes = 0u64;
                        let mut n = 0usize;
                        for (q, outcome) in scratch.served.drain(..) {
                            let report = outcome.into_report();
                            let wait = cursor.since(q.submitted);
                            self.rec.span(
                                Layer::Sched,
                                &kind.to_string(),
                                ops::SCHED_WAIT,
                                q.submitted,
                                wait,
                                report.bytes,
                            );
                            *cursor += report.elapsed;
                            batch_bytes += report.bytes;
                            n += 1;
                            sys.health.record_success(kind);
                            let depth = sys.load.dequeued(kind, 1);
                            self.rec.count(
                                Layer::Sched,
                                &kind.to_string(),
                                ops::QUEUE_DEPTH,
                                *cursor,
                                depth as f64,
                            );
                            if let Some(p) = prefetcher.as_mut() {
                                if p.note_foreground(&self.rec, kind, &q.req, *cursor) {
                                    gates.entry(kind).or_default().dirty = true;
                                }
                            }
                            sys.load.backlog_dequeued(kind, q.est);
                            let tid = self
                                .tenants_of
                                .get(&q.req.tag.session)
                                .copied()
                                .unwrap_or_default();
                            sys.load.tenant_dequeued(tid, 1, q.req.bytes(), q.est);
                            if let Some(r) = remaining.get_mut(&q.req.tag.session) {
                                *r -= q.est;
                            }
                            self.note_served(
                                runs[&q.req.tag.session],
                                &q.req,
                                *cursor,
                                report.bytes,
                            );
                            let acc = accs.get_mut(&q.req.tag.session).expect("admitted session");
                            acc.reports.push((q.req.tag.seq, report.clone()));
                            acc.contribs.push(Contrib {
                                step,
                                phase: 1,
                                kind,
                                wait,
                                io: report.elapsed,
                            });
                            acc.bytes += report.bytes;
                            acc.completed = acc.completed.max(*cursor);
                        }
                        if n > 0 {
                            batches += 1;
                            max_batch = max_batch.max(n);
                            let dur = cursor.since(batch_start);
                            self.rec.span(
                                Layer::Sched,
                                &kind.to_string(),
                                ops::SCHED_DISPATCH,
                                batch_start,
                                dur,
                                batch_bytes,
                            );
                        }
                        if !fetched.is_empty() {
                            let p = prefetcher.as_mut().expect("fetches imply prefetch");
                            let fetch_count = fetched.len();
                            let plan_start =
                                plan_start.expect("planned fetches record their start");
                            p.apply_fetches(&self.rec, kind, plan_start, fetched);
                            sys.load.bg_dequeued(kind, fetch_count);
                        }
                        if let Some(reason) = error {
                            sys.health.record_failure(kind);
                            let unserved = std::mem::take(&mut scratch.unserved);
                            self.requeue(kind, unserved, &reason, &mut queues, &mut accs);
                            for g in gates.values_mut() {
                                g.dirty = true;
                            }
                        }
                    }

                    // Lifecycle tick on event-time boundaries (the event
                    // engine's analogue of "every N rounds"): the global
                    // clock first catches up to the drain's frontier so the
                    // engine's idle windows see virtual time passing.
                    if let Some(lc) = &self.lifecycle {
                        if fired.is_multiple_of(self.lifecycle_every) {
                            let frontier = cursors.values().fold(start, |m, &t| m.max(t));
                            sys.clock.advance_to(frontier);
                            lifecycle_totals.absorb(&lc.tick_excluding(sys, &busy));
                        }
                    }

                    // Deadline enforcement: cancel any session whose remaining
                    // predicted work can no longer finish by its deadline —
                    // its queued requests are dropped and its partial report
                    // finalizes with the cancellation reason.
                    if !deadlines_abs.is_empty() {
                        let frontier = cursors.values().fold(start, |m, &t| m.max(t));
                        let doomed: Vec<u64> = deadlines_abs
                            .iter()
                            .filter(|&(id, &dl)| {
                                let rem = remaining.get(id).copied().unwrap_or(0.0);
                                rem > 0.0 && frontier + SimDuration::from_secs(rem) > dl
                            })
                            .map(|(&id, _)| id)
                            .collect();
                        for id in doomed {
                            deadlines_abs.remove(&id);
                            remaining.remove(&id);
                            self.cancel_session(id, frontier, &mut queues, &mut accs);
                            for g in gates.values_mut() {
                                g.dirty = true;
                            }
                        }
                    }

                    // Backpressure retry: re-price parked programs against the
                    // drained-down load board every few events.
                    if !self.deferred.is_empty() && fired.is_multiple_of(DEFER_RETRY_EVERY) {
                        let frontier = cursors.values().fold(start, |m, &t| m.max(t));
                        self.admit_deferred(
                            frontier,
                            false,
                            &mut queues,
                            &mut cursors,
                            &mut runs,
                            &mut busy,
                            &mut accs,
                            &mut remaining,
                            &mut deadlines_abs,
                            &mut gates,
                        )?;
                    }
                }

                // Re-arm every resource with pending work and no event in
                // flight: this step's own leftovers, and any queue a requeue
                // just landed work on. O(resources), resources are few.
                for (&k, q) in queues.iter() {
                    if !q.is_empty() && !armed.contains(&k) {
                        events.push(cursors.get(&k).copied().unwrap_or(start), k);
                        armed.insert(k);
                    }
                }
            }

            // The event heap is empty. Give every still-parked program a
            // final verdict — admit what fits a fully drained backlog,
            // expire the rest — and keep draining if anything landed.
            if self.deferred.is_empty() {
                break 'drain;
            }
            let frontier = cursors.values().fold(start, |m, &t| m.max(t));
            let admitted_any = self.admit_deferred(
                frontier,
                true,
                &mut queues,
                &mut cursors,
                &mut runs,
                &mut busy,
                &mut accs,
                &mut remaining,
                &mut deadlines_abs,
                &mut gates,
            )?;
            for (&k, q) in queues.iter() {
                if !q.is_empty() && !armed.contains(&k) {
                    events.push(cursors.get(&k).copied().unwrap_or(start), k);
                    armed.insert(k);
                }
            }
            if !admitted_any {
                break 'drain;
            }
        }

        let rounds = steps.values().copied().max().unwrap_or(0);
        let mut end = cursors.values().fold(start, |m, &t| m.max(t));
        if let Some(p) = prefetcher.as_ref() {
            end = p.bg_cursors.values().fold(end, |m, &t| m.max(t));
        }
        let totals = DrainTotals {
            rounds,
            batches,
            max_batch,
            lifecycle: lifecycle_totals,
        };
        self.finalize_report(start, end, accs, totals, prefetcher)
    }

    /// Plan one resource's background fetches for the current step,
    /// skipping the queue walk when the gate proves it side-effect-free.
    /// Admitted fetches are accounted on the load board's background lane.
    fn plan_step(
        &self,
        prefetcher: &mut Option<Prefetcher>,
        gates: &mut BTreeMap<StorageKind, PlanGate>,
        queues: &BTreeMap<StorageKind, WfqQueue<Queued>>,
        kind: StorageKind,
        fg: SimTime,
    ) -> Option<RoundPlan> {
        let p = prefetcher.as_mut()?;
        let gate = gates.entry(kind).or_default();
        if !gate.needs_walk() {
            return None;
        }
        let q = queues.get(&kind)?;
        let (plan, walked) = p.plan(self.sys, &self.rec, kind, q, fg);
        if let Some(undecided) = walked {
            gate.walked(undecided);
        }
        if let Some(pl) = &plan {
            self.sys.load.bg_enqueued(kind, pl.fetches.len());
        }
        plan
    }

    /// Execute a plan's fetches against the owning resource, in plan
    /// order, on the dispatcher thread. Returns each fetch's outcome.
    fn execute_fetches(
        &self,
        kind: StorageKind,
        plan: Option<RoundPlan>,
    ) -> Vec<(PlannedFetch, FetchOutcome)> {
        let Some(plan) = plan else {
            return Vec::new();
        };
        let res = self.sys.resource(kind).expect("placed on registered kind");
        plan.fetches
            .into_iter()
            .map(|f| {
                let r = self
                    .sys
                    .engine
                    .read(&res, &f.path, &f.dist, f.strategy)
                    .map_err(|e| CoreError::from(e).to_string());
                (f, r)
            })
            .collect()
    }

    /// Drain every admitted session with the retired round-robin loop —
    /// the pre-event-engine dispatcher, kept compiled as the reference
    /// implementation for the equivalence test suite (integration tests
    /// cannot see `#[cfg(test)]` items, so it is hidden rather than
    /// test-gated). Semantics are frozen: in fault-free drains
    /// [`Scheduler::run`] must produce a bitwise-identical report.
    #[doc(hidden)]
    pub fn run_round_based(mut self) -> CoreResult<SchedReport> {
        let start = self.sys.clock.now();
        let mut queues = self.build_queues(start);
        let mut cursors: BTreeMap<StorageKind, SimTime> =
            queues.keys().map(|&k| (k, start)).collect();
        let mut accs: BTreeMap<u64, Acc> = self
            .admitted
            .iter()
            .map(|a| {
                (
                    a.id,
                    Acc {
                        reports: Vec::new(),
                        contribs: Vec::new(),
                        bytes: 0,
                        completed: start,
                        requeues: 0,
                        errors: Vec::new(),
                        cancelled: None,
                    },
                )
            })
            .collect();

        let mut rounds = 0u64;
        let mut batches = 0u64;
        let mut max_batch = 0usize;
        let mut prefetcher = self.prefetch.then(Prefetcher::new);
        // Session id -> catalog run, for the recency hooks; admitted runs
        // are off-limits to the lifecycle engine for the whole drain.
        let runs: BTreeMap<u64, RunId> = self.admitted.iter().map(|a| (a.id, a.run)).collect();
        let busy: BTreeSet<RunId> = runs.values().copied().collect();
        let mut lifecycle_totals = TickTotals::default();

        loop {
            // One batch per resource per round, in fixed resource order. A
            // queue whose head is a staged-ready read is served from the
            // cache instead of dispatching to the resource.
            let mut staged_served: Vec<(StorageKind, Vec<Queued>)> = Vec::new();
            let mut picked: Vec<(StorageKind, Vec<Queued>)> = Vec::new();
            let mut blocked: Vec<(StorageKind, Vec<Queued>)> = Vec::new();
            for (&kind, q) in queues.iter_mut() {
                let Some(tenant) = q.select() else { continue };
                let lane = q.lane_mut(tenant);
                if let Some(p) = prefetcher.as_mut() {
                    let cursor = cursors.get(&kind).copied().unwrap_or(start);
                    let run = p.pop_staged_run(lane, cursor);
                    if !run.is_empty() {
                        q.commit(tenant, run.iter().map(|i| i.est).sum());
                        staged_served.push((kind, run));
                        continue;
                    }
                }
                let Some(head) = lane.pop_front() else {
                    continue;
                };
                let mut batch = vec![head];
                while batch.len() < MAX_CHAIN
                    && lane
                        .front()
                        .is_some_and(|n| batch.last().unwrap().req.chains_with(&n.req))
                {
                    batch.push(lane.pop_front().unwrap());
                }
                q.commit(tenant, batch.iter().map(|i| i.est).sum());
                if self.sys.health.allows(kind) {
                    picked.push((kind, batch));
                } else {
                    blocked.push((kind, batch));
                }
            }
            if picked.is_empty() && blocked.is_empty() && staged_served.is_empty() {
                break;
            }
            rounds += 1;

            // Plan this round's background fetches against what is still
            // queued (on the dispatcher thread: planning is pure
            // prediction, no jitter draws).
            let mut plans: BTreeMap<StorageKind, RoundPlan> = BTreeMap::new();
            if let Some(p) = prefetcher.as_mut() {
                for (&kind, q) in queues.iter() {
                    let fg = cursors.get(&kind).copied().unwrap_or(start);
                    if let (Some(plan), _) = p.plan(self.sys, &self.rec, kind, q, fg) {
                        self.sys.load.bg_enqueued(kind, plan.fetches.len());
                        plans.insert(kind, plan);
                    }
                }
            }

            // Execute the round's batches concurrently: each touches only
            // its own resource, so per-resource state stays deterministic.
            // A resource's planned fetches ride the same closure, after
            // its foreground batch, in plan order.
            let engine = &self.sys.engine;
            let mut fetch_starts: BTreeMap<StorageKind, SimTime> = BTreeMap::new();
            let mut tasks = Vec::new();
            for (kind, batch) in picked {
                let fetches = match plans.remove(&kind) {
                    Some(plan) => {
                        fetch_starts.insert(kind, plan.start);
                        plan.fetches
                    }
                    None => Vec::new(),
                };
                let res = self.sys.resource(kind).expect("placed on registered kind");
                tasks.push((kind, batch, fetches, res));
            }
            for (kind, plan) in std::mem::take(&mut plans) {
                fetch_starts.insert(kind, plan.start);
                let res = self.sys.resource(kind).expect("placed on registered kind");
                tasks.push((kind, Vec::new(), plan.fetches, res));
            }
            let results: Vec<RoundResult> = rayon::pool::execute(
                tasks
                    .into_iter()
                    .map(|(kind, batch, fetches, res)| {
                        move || {
                            let mut served = Vec::new();
                            let mut pending = batch.into_iter();
                            let mut failed = None;
                            for q in pending.by_ref() {
                                match engine.execute(&res, &q.req) {
                                    Ok(outcome) => served.push((q, outcome)),
                                    Err(e) => {
                                        failed = Some((q, CoreError::from(e).to_string()));
                                        break;
                                    }
                                }
                            }
                            let mut unserved = Vec::new();
                            let error = failed.map(|(q, e)| {
                                unserved.push(q);
                                e
                            });
                            unserved.extend(pending);
                            let fetched: Vec<(PlannedFetch, FetchOutcome)> = fetches
                                .into_iter()
                                .map(|f| {
                                    let r = engine
                                        .read(&res, &f.path, &f.dist, f.strategy)
                                        .map_err(|e| CoreError::from(e).to_string());
                                    (f, r)
                                })
                                .collect();
                            (kind, (served, unserved, error), fetched)
                        }
                    })
                    .collect(),
            );

            // Serve this round's staged batches inline, before fetch
            // results can touch the cache: a staged serve is one dispatch
            // charge plus a memcpy per read — no resource, no jitter.
            for (kind, batch) in staged_served {
                let p = prefetcher.as_mut().expect("staged batches imply prefetch");
                let comp = kind.to_string();
                let cursor = cursors.entry(kind).or_insert(start);
                let batch_start = *cursor;
                *cursor += dispatch_overhead();
                let mut batch_bytes = 0u64;
                let mut n = 0usize;
                let mut leftovers = Vec::new();
                for q in batch {
                    let outcome = p
                        .take(&q.req.path)
                        .and_then(|data| engine.staged_read(&comp, &q.req, &data).ok());
                    let Some(outcome) = outcome else {
                        // The staged copy vanished under us: back to the
                        // queue head for on-demand service next round.
                        leftovers.push(q);
                        continue;
                    };
                    let report = outcome.into_report();
                    let wait = cursor.since(q.submitted);
                    self.rec.span(
                        Layer::Sched,
                        &comp,
                        ops::SCHED_WAIT,
                        q.submitted,
                        wait,
                        report.bytes,
                    );
                    *cursor += report.elapsed;
                    batch_bytes += report.bytes;
                    n += 1;
                    p.hits += 1;
                    self.rec
                        .count(Layer::Sched, &comp, ops::PREFETCH_HIT, *cursor, 1.0);
                    let depth = self.sys.load.dequeued(kind, 1);
                    self.rec
                        .count(Layer::Sched, &comp, ops::QUEUE_DEPTH, *cursor, depth as f64);
                    self.sys.load.backlog_dequeued(kind, q.est);
                    let tid = self
                        .tenants_of
                        .get(&q.req.tag.session)
                        .copied()
                        .unwrap_or_default();
                    self.sys.load.tenant_dequeued(tid, 1, q.req.bytes(), q.est);
                    self.note_served(runs[&q.req.tag.session], &q.req, *cursor, report.bytes);
                    let acc = accs.get_mut(&q.req.tag.session).expect("admitted session");
                    acc.reports.push((q.req.tag.seq, report.clone()));
                    acc.contribs.push(Contrib {
                        step: rounds,
                        phase: 0,
                        kind,
                        wait,
                        io: report.elapsed,
                    });
                    acc.bytes += report.bytes;
                    acc.completed = acc.completed.max(*cursor);
                }
                if n > 0 {
                    batches += 1;
                    max_batch = max_batch.max(n);
                    let dur = cursor.since(batch_start);
                    self.rec.span(
                        Layer::Sched,
                        &comp,
                        ops::SCHED_DISPATCH,
                        batch_start,
                        dur,
                        batch_bytes,
                    );
                }
                if !leftovers.is_empty() {
                    let q = queues.entry(kind).or_default();
                    for item in leftovers.into_iter().rev() {
                        let tid = self
                            .tenants_of
                            .get(&item.req.tag.session)
                            .copied()
                            .unwrap_or_default();
                        q.push_front(tid, item);
                    }
                }
            }

            // Apply outcomes on this thread, in the round's fixed order.
            for (kind, (served, unserved, error), fetched) in results {
                let cursor = cursors.entry(kind).or_insert(start);
                let batch_start = *cursor;
                // Fetch-only tasks carry no foreground batch: the
                // foreground cursor owes nothing for them.
                if !served.is_empty() || !unserved.is_empty() || error.is_some() {
                    *cursor += dispatch_overhead();
                }
                let mut batch_bytes = 0u64;
                let mut n = 0usize;
                for (q, outcome) in served {
                    let report = outcome.into_report();
                    let wait = cursor.since(q.submitted);
                    self.rec.span(
                        Layer::Sched,
                        &kind.to_string(),
                        ops::SCHED_WAIT,
                        q.submitted,
                        wait,
                        report.bytes,
                    );
                    *cursor += report.elapsed;
                    batch_bytes += report.bytes;
                    n += 1;
                    self.sys.health.record_success(kind);
                    let depth = self.sys.load.dequeued(kind, 1);
                    self.rec.count(
                        Layer::Sched,
                        &kind.to_string(),
                        ops::QUEUE_DEPTH,
                        *cursor,
                        depth as f64,
                    );
                    if let Some(p) = prefetcher.as_mut() {
                        p.note_foreground(&self.rec, kind, &q.req, *cursor);
                    }
                    self.sys.load.backlog_dequeued(kind, q.est);
                    let tid = self
                        .tenants_of
                        .get(&q.req.tag.session)
                        .copied()
                        .unwrap_or_default();
                    self.sys.load.tenant_dequeued(tid, 1, q.req.bytes(), q.est);
                    self.note_served(runs[&q.req.tag.session], &q.req, *cursor, report.bytes);
                    let acc = accs.get_mut(&q.req.tag.session).expect("admitted session");
                    acc.reports.push((q.req.tag.seq, report.clone()));
                    acc.contribs.push(Contrib {
                        step: rounds,
                        phase: 1,
                        kind,
                        wait,
                        io: report.elapsed,
                    });
                    acc.bytes += report.bytes;
                    acc.completed = acc.completed.max(*cursor);
                }
                if n > 0 {
                    batches += 1;
                    max_batch = max_batch.max(n);
                    let dur = cursor.since(batch_start);
                    self.rec.span(
                        Layer::Sched,
                        &kind.to_string(),
                        ops::SCHED_DISPATCH,
                        batch_start,
                        dur,
                        batch_bytes,
                    );
                }
                if !fetched.is_empty() {
                    let p = prefetcher.as_mut().expect("fetches imply prefetch");
                    let fetch_count = fetched.len();
                    let plan_start = fetch_starts
                        .remove(&kind)
                        .expect("planned fetches record their start");
                    p.apply_fetches(&self.rec, kind, plan_start, fetched);
                    self.sys.load.bg_dequeued(kind, fetch_count);
                }
                if let Some(reason) = error {
                    self.sys.health.record_failure(kind);
                    self.requeue(kind, unserved, &reason, &mut queues, &mut accs);
                }
            }
            for (kind, batch) in blocked {
                self.requeue(kind, batch, "circuit open", &mut queues, &mut accs);
            }

            // Between-round lifecycle tick, on the dispatcher thread. The
            // global clock first catches up to the drain's frontier so the
            // engine's idle windows see virtual time passing; `advance_to`
            // is a monotonic max, so the final makespan advance below
            // still lands wherever is latest.
            if let Some(engine) = &self.lifecycle {
                if rounds.is_multiple_of(self.lifecycle_every) {
                    let frontier = cursors.values().fold(start, |m, &t| m.max(t));
                    self.sys.clock.advance_to(frontier);
                    lifecycle_totals.absorb(&engine.tick_excluding(self.sys, &busy));
                }
            }
        }

        // The drain overlapped sessions across resources; the global clock
        // moves once, to the latest cursor — background fetch streams
        // included, so time spent prefetching never disappears from the
        // makespan.
        let mut end = cursors.values().fold(start, |m, &t| m.max(t));
        if let Some(p) = prefetcher.as_ref() {
            end = p.bg_cursors.values().fold(end, |m, &t| m.max(t));
        }
        let totals = DrainTotals {
            rounds,
            batches,
            max_batch,
            lifecycle: lifecycle_totals,
        };
        self.finalize_report(start, end, accs, totals, prefetcher)
    }

    /// Fold the drained accumulators into the final report: advance the
    /// global clock to the drain's end, finalize every catalog session
    /// (disconnect costs charged) in admission order, and compute the
    /// whole-run totals. Shared by both dispatch engines.
    fn finalize_report(
        mut self,
        start: SimTime,
        end: SimTime,
        mut accs: BTreeMap<u64, Acc>,
        totals: DrainTotals,
        prefetcher: Option<Prefetcher>,
    ) -> CoreResult<SchedReport> {
        self.sys.clock.advance_to(end);
        // Fold the drain's chunk-plane transfer observations into the
        // ratio book at a deterministic point: the drain is complete, so
        // every dataset's observations arrived in dump order and the
        // per-dataset EWMA folds are order-independent across datasets.
        // The learned ratios price the *next* drain's admission and
        // prefetch decisions.
        self.sys.sync_ratios();

        let mut sessions = Vec::new();
        let mut session_tenants = Vec::new();
        let mut total_bytes = 0u64;
        for a in std::mem::take(&mut self.admitted) {
            let mut acc = accs.remove(&a.id).expect("accumulator per session");
            acc.reports.sort_by_key(|&(seq, _)| seq);
            // Fold timing contributions in round order (stable, so
            // intra-batch order is kept): float sums are order-sensitive
            // and both engines must report bitwise-identical totals.
            acc.contribs.sort_by_key(|c| (c.step, c.phase, c.kind));
            let mut wait_time = SimDuration::ZERO;
            let mut io_time = SimDuration::ZERO;
            for c in &acc.contribs {
                wait_time += c.wait;
                io_time += c.io;
            }
            // p99 queue wait: the tail-latency figure tenant SLOs are
            // judged against. Sorted with total_cmp so the pick is
            // deterministic for every float pattern.
            let wait_p99 = {
                let mut waits: Vec<f64> = acc.contribs.iter().map(|c| c.wait.as_secs()).collect();
                waits.sort_by(|x, y| x.total_cmp(y));
                if waits.is_empty() {
                    SimDuration::ZERO
                } else {
                    let idx = ((waits.len() as f64 * 0.99).ceil() as usize).clamp(1, waits.len());
                    SimDuration::from_secs(waits[idx - 1])
                }
            };
            let fin = a.session.finalize()?;
            // Range over this session's keys only: a full-map filter here
            // is O(sessions²) across the finalize loop, which a 10k-fleet
            // drain actually feels.
            let placements = self
                .locations
                .range((a.id, String::new())..(a.id + 1, String::new()))
                .map(|((_, name), &kind)| (name.clone(), kind))
                .collect();
            total_bytes += acc.bytes;
            let tenant = self
                .tenant_names
                .get(&a.tenant)
                .cloned()
                .unwrap_or_else(|| a.tenant.to_string());
            session_tenants.push(a.tenant);
            sessions.push(SessionReport {
                session: a.id,
                app: a.app,
                run: a.run.0,
                placements,
                requests: acc.reports.len() as u64,
                bytes: acc.bytes,
                io_time,
                wait_time,
                conn_time: fin.conn_time,
                completed_at: acc.completed,
                requeues: acc.requeues,
                errors: acc.errors,
                reports: acc.reports.into_iter().map(|(_, r)| r).collect(),
                tenant,
                wait_p99,
                cancelled: acc.cancelled,
            });
        }

        // Per-tenant rollup: session totals plus the overload counters, in
        // tenant-id order (deterministic across engines and thread counts).
        let mut tmap: BTreeMap<TenantId, TenantReport> = BTreeMap::new();
        for (&tid, c) in &self.tcounts {
            let e = tmap.entry(tid).or_default();
            e.shed = c.shed;
            e.deferred = c.deferred;
            e.expired = c.expired;
            e.cancelled = c.cancelled;
        }
        for (tid, s) in session_tenants.iter().zip(&sessions) {
            let e = tmap.entry(*tid).or_default();
            e.sessions += 1;
            e.requests += s.requests;
            e.bytes += s.bytes;
            e.wait_p99 = e.wait_p99.max(s.wait_p99);
        }
        for (tid, e) in &mut tmap {
            e.tenant = self
                .tenant_names
                .get(tid)
                .cloned()
                .unwrap_or_else(|| tid.to_string());
        }
        let tenants: Vec<TenantReport> = tmap.into_values().collect();

        let makespan = self.sys.clock.now().since(start);
        let throughput_mb_s = if makespan > SimDuration::ZERO {
            total_bytes as f64 / makespan.as_secs() / 1e6
        } else {
            0.0
        };
        let (prefetched, prefetch_hits, prefetch_waste, prefetch_declined) = prefetcher
            .map(|p| (p.staged, p.hits, p.waste, p.declines))
            .unwrap_or_default();
        Ok(SchedReport {
            sessions,
            makespan,
            total_bytes,
            rounds: totals.rounds,
            batches: totals.batches,
            max_batch: totals.max_batch,
            throughput_mb_s,
            prefetched,
            prefetch_hits,
            prefetch_waste,
            prefetch_declined,
            lifecycle: totals.lifecycle,
            tenants,
        })
    }

    /// Deal every admitted session's requests into per-resource weighted-
    /// fair queues, round-robin across sessions at chain granularity: each
    /// turn takes one batchable run (same dataset, consecutive seqs, at
    /// most [`MAX_CHAIN`]) from each session, so no client's backlog
    /// buries another's. Within a resource, each tenant's requests land on
    /// its own [`WfqQueue`] lane, priced with the eq. (2) estimator — the
    /// start-time-fair virtual clock arbitrates between lanes at dispatch.
    fn build_queues(&mut self, submitted: SimTime) -> BTreeMap<StorageKind, WfqQueue<Queued>> {
        let sys = self.sys;
        let mut queues: BTreeMap<StorageKind, WfqQueue<Queued>> = BTreeMap::new();
        loop {
            let mut any = false;
            for a in &mut self.admitted {
                let Some(first) = a.requests.pop_front() else {
                    continue;
                };
                any = true;
                let mut chain = vec![first];
                while chain.len() < MAX_CHAIN
                    && a.requests
                        .front()
                        .is_some_and(|n| chain.last().unwrap().chains_with(n))
                {
                    chain.push(a.requests.pop_front().unwrap());
                }
                // A chain is one session × one dataset, so its placement
                // is a single lookup, not one per request.
                let kind = self.locations[&(a.id, chain[0].dataset.clone())];
                let q = queues.entry(kind).or_default();
                q.set_weight(
                    a.tenant,
                    self.weights.get(&a.tenant).copied().unwrap_or(1.0),
                );
                for req in chain {
                    let est = self.estimator.cost(sys, kind, &req);
                    q.push_back(
                        a.tenant,
                        Queued {
                            req,
                            submitted,
                            attempts: 0,
                            est,
                        },
                    );
                }
            }
            if !any {
                break;
            }
        }
        queues
    }

    /// Deal one just-admitted session's requests into the live queues
    /// (mid-drain admission from the backpressure queue). The session's
    /// chains keep program order; fairness against the sessions already
    /// draining comes from the WFQ lanes, not the deal. Returns the
    /// session's total predicted service seconds and the resources it
    /// landed on.
    fn deal_session_requests(
        &mut self,
        idx: usize,
        submitted: SimTime,
        queues: &mut BTreeMap<StorageKind, WfqQueue<Queued>>,
    ) -> (f64, BTreeSet<StorageKind>) {
        let sys = self.sys;
        let a = &mut self.admitted[idx];
        let weight = self.weights.get(&a.tenant).copied().unwrap_or(1.0);
        let mut total = 0.0f64;
        let mut kinds = BTreeSet::new();
        while let Some(first) = a.requests.pop_front() {
            let mut chain = vec![first];
            while chain.len() < MAX_CHAIN
                && a.requests
                    .front()
                    .is_some_and(|n| chain.last().unwrap().chains_with(n))
            {
                chain.push(a.requests.pop_front().unwrap());
            }
            let kind = self.locations[&(a.id, chain[0].dataset.clone())];
            kinds.insert(kind);
            let q = queues.entry(kind).or_default();
            q.set_weight(a.tenant, weight);
            for req in chain {
                let est = self.estimator.cost(sys, kind, &req);
                total += est;
                q.push_back(
                    a.tenant,
                    Queued {
                        req,
                        submitted,
                        attempts: 0,
                        est,
                    },
                );
            }
        }
        (total, kinds)
    }

    /// Cancel an admitted session mid-drain: everything it still has
    /// queued is removed (load-board depth, predicted backlog and tenant
    /// ledgers all released), its accumulator is marked cancelled and the
    /// cancellation counts against its tenant. Requests already served
    /// stay accounted — the session's report finalizes partial.
    fn cancel_session(
        &mut self,
        id: u64,
        at: SimTime,
        queues: &mut BTreeMap<StorageKind, WfqQueue<Queued>>,
        accs: &mut BTreeMap<u64, Acc>,
    ) {
        let tid = self.tenants_of.get(&id).copied().unwrap_or_default();
        let mut dropped = 0usize;
        for (&kind, q) in queues.iter_mut() {
            let removed = q.drain_matching(|item| item.req.tag.session == id);
            if removed.is_empty() {
                continue;
            }
            let depth = self.sys.load.dequeued(kind, removed.len());
            self.rec.count(
                Layer::Sched,
                &kind.to_string(),
                ops::QUEUE_DEPTH,
                at,
                depth as f64,
            );
            for item in &removed {
                self.sys.load.backlog_dequeued(kind, item.est);
                self.sys
                    .load
                    .tenant_dequeued(tid, 1, item.req.bytes(), item.est);
            }
            dropped += removed.len();
        }
        let reason = format!("deadline unreachable: {dropped} queued requests dropped");
        if let Some(acc) = accs.get_mut(&id) {
            acc.cancelled = Some(reason.clone());
        }
        self.tcounts.entry(tid).or_default().cancelled += 1;
        let app = self
            .admitted
            .iter()
            .find(|a| a.id == id)
            .map(|a| a.app.clone())
            .unwrap_or_default();
        self.rec
            .instant(Layer::Sched, &app, ops::SESSION_CANCEL, at, &reason);
    }

    /// One pass over the backpressure queue: expire programs whose TTL
    /// elapsed, re-run the admission gate on the rest, and deal whatever
    /// now fits into the live queues (admitted at `now`). With `force`
    /// (the event heap just emptied) every program gets a final verdict —
    /// admit or expire — so the drain always terminates. Returns whether
    /// anything was admitted.
    #[allow(clippy::too_many_arguments)]
    fn admit_deferred(
        &mut self,
        now: SimTime,
        force: bool,
        queues: &mut BTreeMap<StorageKind, WfqQueue<Queued>>,
        cursors: &mut BTreeMap<StorageKind, SimTime>,
        runs: &mut BTreeMap<u64, RunId>,
        busy: &mut BTreeSet<RunId>,
        accs: &mut BTreeMap<u64, Acc>,
        remaining: &mut BTreeMap<u64, f64>,
        deadlines_abs: &mut BTreeMap<u64, SimTime>,
        gates: &mut BTreeMap<StorageKind, PlanGate>,
    ) -> CoreResult<bool> {
        let mut any = false;
        let parked = std::mem::take(&mut self.deferred);
        for d in parked {
            let tenant_name = self
                .tenant_names
                .get(&d.tenant)
                .cloned()
                .unwrap_or_default();
            if now > d.expires {
                self.expire(d.tenant, &tenant_name, &d.program.app, now, "ttl elapsed");
                continue;
            }
            let Some(tenant) = self.sys.tenants.get(d.tenant) else {
                self.expire(
                    d.tenant,
                    &tenant_name,
                    &d.program.app,
                    now,
                    "tenant unregistered",
                );
                continue;
            };
            match self.admission_gate(&d.program, d.tenant, &tenant)? {
                GateVerdict::Admit => {
                    let deadline = d.program.deadline;
                    let id = self.open_and_expand(d.program, d.tenant)?;
                    let (est, kinds) = self.deal_session_requests(id as usize, now, queues);
                    // A resource that was idle (cursor behind the frontier)
                    // cannot have served this work before it arrived.
                    for kind in kinds {
                        let c = cursors.entry(kind).or_insert(now);
                        *c = (*c).max(now);
                    }
                    let a = self.admitted.last().expect("just admitted");
                    runs.insert(id, a.run);
                    busy.insert(a.run);
                    accs.insert(
                        id,
                        Acc {
                            reports: Vec::new(),
                            contribs: Vec::new(),
                            bytes: 0,
                            completed: now,
                            requeues: 0,
                            errors: Vec::new(),
                            cancelled: None,
                        },
                    );
                    if let Some(dl) = deadline {
                        remaining.insert(id, est);
                        deadlines_abs.insert(id, now + dl);
                    }
                    for g in gates.values_mut() {
                        g.dirty = true;
                    }
                    any = true;
                }
                _ if force => {
                    self.expire(
                        d.tenant,
                        &tenant_name,
                        &d.program.app,
                        now,
                        "still over limits with queues drained",
                    );
                }
                _ => self.deferred.push_back(d),
            }
        }
        Ok(any)
    }

    /// Count and record one deferred program dropped unadmitted.
    fn expire(&mut self, tid: TenantId, tenant: &str, app: &str, at: SimTime, why: &str) {
        self.tcounts.entry(tid).or_default().expired += 1;
        self.rec.instant(
            Layer::Sched,
            tenant,
            ops::ADMIT_EXPIRE,
            at,
            &format!("{app}: {why}"),
        );
    }

    /// Move a failed (or breaker-blocked) batch — and everything else the
    /// same dataset still has queued on `from` — to the dataset's static
    /// fallback resource, mirroring the session layer's transparent
    /// failover. Requests that exhaust [`MAX_ATTEMPTS`] are abandoned into
    /// the session's error list.
    fn requeue(
        &mut self,
        from: StorageKind,
        mut items: Vec<Queued>,
        reason: &str,
        queues: &mut BTreeMap<StorageKind, WfqQueue<Queued>>,
        accs: &mut BTreeMap<u64, Acc>,
    ) {
        let keys: BTreeSet<(u64, String)> = items
            .iter()
            .map(|q| (q.req.tag.session, q.req.dataset.clone()))
            .collect();
        // Drag along the dataset's later requests still waiting on `from`,
        // preserving their order behind the failed batch.
        if let Some(q) = queues.get_mut(&from) {
            items.extend(q.drain_matching(|item| {
                keys.contains(&(item.req.tag.session, item.req.dataset.clone()))
            }));
        }

        for key in keys {
            let spec = &self.specs[&key];
            let moved: Vec<Queued> = {
                let mut moved = Vec::new();
                let mut rest = Vec::new();
                for q in items.drain(..) {
                    if (q.req.tag.session, q.req.dataset.clone()) == key {
                        moved.push(q);
                    } else {
                        rest.push(q);
                    }
                }
                items = rest;
                moved
            };
            let tid = self.tenants_of.get(&key.0).copied().unwrap_or_default();
            let bytes: u64 = moved.iter().map(|q| q.req.bytes()).sum();
            let next = placement::fallback(self.sys, spec, bytes, Some(from))
                .ok()
                .flatten();
            let now = self.sys.clock.now();
            match next {
                Some(to) => {
                    let n = moved.len();
                    self.locations.insert(key.clone(), to);
                    self.update_catalog(key.0, &key.1, to);
                    self.rec.instant(
                        Layer::Sched,
                        &from.to_string(),
                        ops::SCHED_REQUEUE,
                        now,
                        &format!(
                            "s{}/{}: {from} -> {to} ({reason}, {n} requests)",
                            key.0, key.1
                        ),
                    );
                    let acc = accs.get_mut(&key.0).expect("admitted session");
                    acc.requeues += n as u32;
                    self.sys.load.dequeued(from, n);
                    self.sys.load.enqueued(to, n);
                    let weight = self.weights.get(&tid).copied().unwrap_or(1.0);
                    let target = queues.entry(to).or_default();
                    target.set_weight(tid, weight);
                    for mut q in moved {
                        self.sys.load.backlog_dequeued(from, q.est);
                        q.attempts += 1;
                        if q.attempts >= MAX_ATTEMPTS {
                            self.sys.load.dequeued(to, 1);
                            self.sys.load.tenant_dequeued(tid, 1, q.req.bytes(), q.est);
                            accs.get_mut(&key.0)
                                .expect("admitted session")
                                .errors
                                .push(format!(
                                    "{} gave up after {} attempts",
                                    q.req.tag, q.attempts
                                ));
                        } else {
                            // Re-price on the fallback resource: the
                            // backlog and tenant predicted-seconds ledgers
                            // track where the work now queues.
                            let est = self.estimator.cost(self.sys, to, &q.req);
                            self.sys.load.backlog_enqueued(to, est);
                            self.sys.load.tenant_dequeued(tid, 0, 0, q.est);
                            self.sys.load.tenant_enqueued(tid, 0, 0, est);
                            q.est = est;
                            target.push_back(tid, q);
                        }
                    }
                }
                None => {
                    self.sys.load.dequeued(from, moved.len());
                    let acc = accs.get_mut(&key.0).expect("admitted session");
                    for q in moved {
                        self.sys.load.backlog_dequeued(from, q.est);
                        self.sys.load.tenant_dequeued(tid, 1, q.req.bytes(), q.est);
                        acc.errors
                            .push(format!("{}: no usable resource ({reason})", q.req.tag));
                    }
                }
            }
        }
    }

    /// Free recency hook: mirror one served request into the catalog's
    /// dump/heat columns so a lifecycle engine (this run's or a later
    /// one's) sees what is hot. Charges no query cost and never moves the
    /// clock — with no lifecycle attached the run's report is bitwise
    /// unchanged. OverWrite datasets rewrite one file, so their single
    /// dump row keys on iteration 0 (their paths carry no `.t` suffix and
    /// the parse falls back to 0).
    fn note_served(&self, run: RunId, req: &EngineRequest, at: SimTime, bytes: u64) {
        let iter = req
            .path
            .rsplit_once(".t")
            .and_then(|(_, s)| s.parse().ok())
            .unwrap_or(0);
        {
            let mut catalog = self.sys.catalog.lock();
            match req.body {
                RequestBody::Write { .. } => {
                    catalog.note_dump(run, &req.dataset, iter, at.as_secs(), bytes);
                }
                RequestBody::Read => {
                    catalog.note_access(run, &req.dataset, Some(iter), at.as_secs());
                }
            }
        }
        if self.lifecycle.is_some() {
            self.rec
                .count(Layer::Sched, &req.dataset, ops::DATASET_ACCESS, at, 1.0);
        }
    }

    /// Mirror a requeue's location change into the metadata catalog so
    /// consumers still find the data (the session layer does the same on
    /// its failover path).
    fn update_catalog(&self, session: u64, dataset: &str, to: StorageKind) {
        let Some(a) = self.admitted.iter().find(|a| a.id == session) else {
            return;
        };
        let mut catalog = self.sys.catalog.lock();
        if let Ok(rec) = catalog.find_dataset(a.run, dataset) {
            let id = rec.id;
            let _ = catalog.set_dataset_location(id, Location::Stored(to));
        }
    }
}

fn dump_path(app: &str, run: RunId, spec: &DatasetSpec, iter: u32) -> String {
    let base = format!("{}/run{}/{}", app, run.0, spec.name);
    match spec.amode {
        AccessMode::Create => format!("{base}.t{iter:05}"),
        AccessMode::OverWrite => base,
    }
}

type BatchResult = (Vec<(Queued, RequestOutcome)>, Vec<Queued>, Option<String>);
