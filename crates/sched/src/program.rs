//! What a client asks the scheduler to run.
//!
//! A [`SessionProgram`] is the whole I/O side of one application run,
//! declared up front: the catalog identity, the process grid, the
//! iteration count and the datasets with their hints. At admission the
//! scheduler opens a real catalog session for it, resolves placements
//! (through the scored AUTO policy) and expands the program into tagged
//! [`msr_runtime::EngineRequest`]s — one write per dump the Fig. 5 main
//! loop would have issued, in program order.

use bytes::Bytes;
use msr_core::DatasetSpec;
use msr_runtime::ProcGrid;
use msr_sim::SimDuration;

/// One client's declared run, admitted as a unit.
#[derive(Debug, Clone)]
pub struct SessionProgram {
    /// Application name registered in the catalog.
    pub app: String,
    /// User name registered in the catalog.
    pub user: String,
    /// Main-loop iterations of the run.
    pub iterations: u32,
    /// The parallel process grid.
    pub grid: ProcGrid,
    /// Datasets the run dumps, in open order.
    pub datasets: Vec<DatasetSpec>,
    /// Also read every dataset's first dump back at the end of the
    /// program (a post-processing consumer folded into the same session).
    pub readback: bool,
    /// Read this many of each dataset's earliest dumps back at the end of
    /// the program. Unlike [`readback`](SessionProgram::readback) (which
    /// chains its single read directly behind the dumps), a non-zero
    /// `readbacks` expands with a sequence hole before the reads, so the
    /// consumer reads form their own dispatch chains — the shape the
    /// prediction-driven prefetcher can overlap with other sessions'
    /// foreground work.
    pub readbacks: u32,
    /// The tenant this run belongs to. `None` lands on the default
    /// tenant (weight 1, no quotas, no SLO); a name is resolved against
    /// the system's [`msr_core::TenantRegistry`], auto-registering with
    /// defaults when unknown.
    pub tenant: Option<String>,
    /// Completion deadline, in virtual time from the drain's start. A
    /// session whose remaining predicted work can no longer finish by
    /// the deadline is cancelled mid-drain: its queued requests are
    /// removed and its partial report carries the cancellation reason.
    pub deadline: Option<SimDuration>,
}

impl SessionProgram {
    /// A program with defaults: user `"user"`, 12 iterations, a 1×1×1
    /// grid, no datasets, no readback.
    pub fn new(app: &str) -> SessionProgram {
        SessionProgram {
            app: app.to_owned(),
            user: "user".to_owned(),
            iterations: 12,
            grid: ProcGrid::new(1, 1, 1),
            datasets: Vec::new(),
            readback: false,
            readbacks: 0,
            tenant: None,
            deadline: None,
        }
    }

    /// User name registered in the catalog.
    pub fn user(mut self, user: &str) -> Self {
        self.user = user.to_owned();
        self
    }

    /// Main-loop iterations.
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    /// The process grid.
    pub fn grid(mut self, grid: ProcGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Add one dataset.
    pub fn dataset(mut self, spec: DatasetSpec) -> Self {
        self.datasets.push(spec);
        self
    }

    /// Read each dataset's first dump back at the end of the program.
    pub fn readback(mut self, readback: bool) -> Self {
        self.readback = readback;
        self
    }

    /// Read each dataset's `n` earliest dumps back at the end of the
    /// program, expanded as standalone read chains (see
    /// [`SessionProgram::readbacks`]).
    pub fn readbacks(mut self, n: u32) -> Self {
        self.readbacks = n;
        self
    }

    /// Tag the run with a tenant name (see [`SessionProgram::tenant`]).
    pub fn tenant(mut self, tenant: &str) -> Self {
        self.tenant = Some(tenant.to_owned());
        self
    }

    /// Set a completion deadline in virtual time from the drain's start
    /// (see [`SessionProgram::deadline`]).
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Deterministic dump payload for `(session, dataset, iter)`: a base LCG
/// stream seeded from `(session, dataset)` plus a per-iteration churn
/// window covering ~1/16 of the bytes, so replays are bitwise identical
/// regardless of worker count or admission interleaving.
///
/// The churn shape mirrors a checkpointing producer — successive dumps of
/// one dataset share most of their bytes, with a sliding window of fresh
/// data per iteration — which is what gives the content-addressed chunk
/// plane dedup to find. Request *timing* is unaffected: virtual I/O costs
/// depend on sizes, never on payload content, so raw (unchunked) runs
/// report bitwise identically to the previous all-random payload.
pub fn payload(session: u64, dataset: &str, iter: u32, len: usize) -> Bytes {
    let mut h = 0xcbf29ce484222325u64 ^ session.wrapping_mul(0x9e3779b97f4a7c15);
    for b in dataset.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    let stream = |seed: u64, n: usize| -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        let mut x = seed | 1;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push((x >> 56) as u8);
        }
        out
    };
    let mut out = stream(h, len);
    if len > 0 {
        // Churn window: position walks the payload with iteration, content
        // is keyed by the full identity so every iteration differs.
        let window = (len / 16).max(1);
        let at = (iter as usize).wrapping_mul(7919) % len;
        let churn = stream(
            h ^ u64::from(iter).wrapping_mul(0x2545f4914f6cdd1d),
            window.min(len),
        );
        for (i, b) in churn.into_iter().enumerate() {
            out[(at + i) % len] = b;
        }
    }
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_identity_sensitive() {
        let a = payload(1, "temp", 0, 64);
        assert_eq!(a, payload(1, "temp", 0, 64));
        assert_ne!(a, payload(2, "temp", 0, 64));
        assert_ne!(a, payload(1, "pres", 0, 64));
        assert_ne!(a, payload(1, "temp", 6, 64));
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn payload_churns_a_window_between_iterations() {
        let len = 4096;
        let a = payload(3, "ckpt", 0, len);
        let b = payload(3, "ckpt", 6, len);
        let differing = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
        assert!(differing > 0, "successive dumps must not be identical");
        // Both dumps overlay their own window on the shared base, so at
        // most two windows' worth of bytes can differ.
        assert!(
            differing <= 2 * (len / 16).max(1),
            "churn window too wide: {differing} of {len} bytes differ"
        );
        // Degenerate sizes still behave.
        assert_ne!(payload(3, "ckpt", 0, 1), payload(3, "ckpt", 1, 1));
        assert!(payload(3, "ckpt", 0, 0).is_empty());
    }

    #[test]
    fn program_builder_composes() {
        let p = SessionProgram::new("astro3d")
            .user("me")
            .iterations(24)
            .grid(ProcGrid::new(2, 1, 1))
            .dataset(DatasetSpec::builder("temp").build())
            .dataset(DatasetSpec::builder("pres").build())
            .readback(true);
        assert_eq!(p.app, "astro3d");
        assert_eq!(p.iterations, 24);
        assert_eq!(p.datasets.len(), 2);
        assert!(p.readback);
    }
}
