//! Per-session and scheduler-wide accounting for a scheduled run.

use msr_lifecycle::TickTotals;
use msr_runtime::IoReport;
use msr_sim::{SimDuration, SimTime};
use msr_storage::StorageKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One admitted session's accounting, folded back from the per-resource
/// queues. `reports` is in the session's program (sequence) order, so two
/// runs of the same workload can be compared bitwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Scheduler-assigned session id (admission order).
    pub session: u64,
    /// Application name.
    pub app: String,
    /// Catalog run id of the session.
    pub run: u64,
    /// Where each dataset ended up (after any failover re-queues).
    pub placements: BTreeMap<String, StorageKind>,
    /// Requests served.
    pub requests: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Sum of service time across the session's requests.
    pub io_time: SimDuration,
    /// Sum of time the session's requests spent queued before service.
    pub wait_time: SimDuration,
    /// Connection setup/teardown time charged to the session.
    pub conn_time: SimDuration,
    /// Virtual time the session's last request completed.
    pub completed_at: SimTime,
    /// Requests re-queued onto another resource after a failure or an
    /// open circuit.
    pub requeues: u32,
    /// Requests abandoned after exhausting re-queue attempts.
    pub errors: Vec<String>,
    /// Per-request reports in program order.
    pub reports: Vec<IoReport>,
    /// Name of the tenant the session ran under (`"default"` for
    /// untagged programs).
    #[serde(default)]
    pub tenant: String,
    /// p99 of the session's per-request queue waits (the tail-latency
    /// figure per-tenant SLOs are judged against).
    #[serde(default)]
    pub wait_p99: SimDuration,
    /// Why the session was cancelled mid-drain, if it was: its deadline
    /// became unreachable under current predictions. The report is then
    /// partial — served requests are accounted, queued ones dropped.
    #[serde(default)]
    pub cancelled: Option<String>,
}

/// The whole scheduled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedReport {
    /// Per-session accounting, in admission order.
    pub sessions: Vec<SessionReport>,
    /// Virtual time from first dispatch to last completion, connection
    /// teardown included.
    pub makespan: SimDuration,
    /// Bytes moved across all sessions.
    pub total_bytes: u64,
    /// Dispatch steps taken by the busiest resource. Under the
    /// discrete-event engine each resource counts its own completion
    /// events and this is the maximum; on a fault-free drain it equals
    /// the global round count the old round-based dispatcher reported.
    pub rounds: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Largest contiguous batch served in one dispatch.
    pub max_batch: usize,
    /// `total_bytes / makespan`, MB/s of virtual time.
    pub throughput_mb_s: f64,
    /// Reads the prefetcher staged into the cache (0 with prefetch off).
    pub prefetched: u64,
    /// Reads served from staged bytes at memory speed.
    pub prefetch_hits: u64,
    /// Staged buffers that were never served: overwritten, evicted,
    /// cache-declined, or beaten by their own on-demand serve.
    pub prefetch_waste: u64,
    /// Candidate reads whose predicted fetch did not fit the predicted
    /// idle window and were never fetched.
    pub prefetch_declined: u64,
    /// Lifecycle-engine totals across the run's between-round ticks (all
    /// zero with no lifecycle attached).
    #[serde(default)]
    pub lifecycle: TickTotals,
    /// Per-tenant accounting, in tenant-id order. Always at least the
    /// default tenant once any session ran.
    #[serde(default)]
    pub tenants: Vec<TenantReport>,
}

/// One tenant's view of the drain: how much service it received and how
/// the overload machinery treated it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Sessions that completed (or were cancelled) under this tenant.
    pub sessions: u64,
    /// Requests served.
    pub requests: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Programs rejected at admission (quota or SLO with a shed policy,
    /// or a full deferral queue).
    pub shed: u64,
    /// Programs parked in the admission backpressure queue at least once.
    pub deferred: u64,
    /// Deferred programs whose time-to-live elapsed unadmitted.
    pub expired: u64,
    /// Admitted sessions cancelled mid-drain by deadline enforcement.
    pub cancelled: u64,
    /// Worst p99 queue wait across the tenant's sessions.
    pub wait_p99: SimDuration,
}

impl SchedReport {
    /// Requests served across all sessions.
    pub fn requests(&self) -> u64 {
        self.sessions.iter().map(|s| s.requests).sum()
    }

    /// Sum of all sessions' service time — what a strictly sequential
    /// back-to-back execution of the same work would have taken, before
    /// connection costs.
    pub fn total_io_time(&self) -> SimDuration {
        self.sessions.iter().map(|s| s.io_time).sum()
    }
}
