//! Discrete-event machinery for the dispatcher: a binary min-heap of
//! resource-completion events and the per-resource bookkeeping the event
//! loop keeps between steps.
//!
//! The round-based dispatcher walked every resource (and, through the
//! prefetch planner, every queued request) once per round, making each
//! dispatch step O(sessions × resources). The event engine instead keeps
//! **one pending completion event per resource**: when a resource's
//! cursor reaches the event's time, the engine pops one batch from that
//! resource's queue, executes it, and re-arms the resource at its new
//! cursor. Sessions are woken lazily — a session is only touched when the
//! resource at its queue head comes free — so a dispatch step costs
//! O(log resources + batch) regardless of how many sessions are admitted.
//!
//! Determinism: events are ordered by `(SimTime, StorageKind, seq)`.
//! Virtual times are exact `f64` arithmetic on deterministic inputs (the
//! seeded jitter streams), `StorageKind` breaks exact-time ties in fixed
//! resource order (the same order the round engine applied outcomes in),
//! and `seq` — the push counter — makes the ordering total. Nothing in
//! the ordering depends on host time, thread scheduling or map iteration
//! order, so a drain is bitwise reproducible at any `MSR_THREADS`.

use msr_sim::SimTime;
use msr_storage::StorageKind;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A resource-completion event: `kind`'s cursor reaches `time` and the
/// resource is free to serve its next batch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventKey {
    pub time: SimTime,
    pub kind: StorageKind,
    pub seq: u64,
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // SimTime is a plain f64 without a total order of its own;
        // total_cmp is exact and total (virtual times are never NaN, and
        // every producer computes them deterministically).
        self.time
            .as_secs()
            .total_cmp(&other.time.as_secs())
            .then_with(|| self.kind.cmp(&other.kind))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Min-heap of pending resource events. The scheduler keeps at most one
/// event per resource in flight (re-arming a resource only after its
/// previous event fired), so the heap never outgrows the resource count.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<EventKey>>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Arm `kind` to fire at `time`.
    pub fn push(&mut self, time: SimTime, kind: StorageKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(std::cmp::Reverse(EventKey { time, kind, seq }));
    }

    /// The earliest pending event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, StorageKind)> {
        self.heap.pop().map(|std::cmp::Reverse(e)| (e.time, e.kind))
    }
}

/// Reusable per-step scratch owned by the event loop, so steady-state
/// dispatch allocates nothing: the round engine's per-round
/// `staged_served`/`picked`/`blocked` vectors and task collections are
/// gone, and the batch/outcome buffers below are drained and reused
/// every step.
#[derive(Default)]
pub(crate) struct Scratch<B, S> {
    /// The batch popped from the queue head this step.
    pub batch: Vec<B>,
    /// Served `(request, outcome)` pairs, applied then drained.
    pub served: Vec<S>,
    /// Requests not served after a mid-batch failure.
    pub unserved: Vec<B>,
}

impl<B, S> Scratch<B, S> {
    pub fn new() -> Scratch<B, S> {
        Scratch {
            batch: Vec::new(),
            served: Vec::new(),
            unserved: Vec::new(),
        }
    }
}

/// Per-resource read-ahead planning gate. The planner's queue walk is
/// side-effect-free unless some queued read is still *undecided* (not yet
/// planned or declined, e.g. because a write to the same path is still
/// ahead of it, or its file does not exist yet). Tracking how many
/// undecided reads the last walk saw lets the event loop skip the walk
/// entirely once every candidate has a final decision — which is what
/// keeps prefetch-on dispatch from re-walking O(queue) state every step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanGate {
    /// Undecided read candidates remaining after the last walk.
    pub undecided: usize,
    /// Set when the queue changed shape under the gate (initial build,
    /// requeue traffic, or a planned path re-opened by an overwrite):
    /// the next step must walk regardless of the counter.
    pub dirty: bool,
}

impl Default for PlanGate {
    fn default() -> Self {
        PlanGate {
            undecided: 0,
            dirty: true,
        }
    }
}

impl PlanGate {
    /// Whether the next step needs a planning walk.
    pub fn needs_walk(&self) -> bool {
        self.dirty || self.undecided > 0
    }

    /// Record a walk's outcome: `undecided` candidates remain.
    pub fn walked(&mut self, undecided: usize) {
        self.undecided = undecided;
        self.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_kind_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2.0), StorageKind::LocalDisk);
        q.push(SimTime::from_secs(1.0), StorageKind::RemoteTape);
        q.push(SimTime::from_secs(1.0), StorageKind::LocalDisk);
        assert_eq!(
            q.pop(),
            Some((SimTime::from_secs(1.0), StorageKind::LocalDisk))
        );
        assert_eq!(
            q.pop(),
            Some((SimTime::from_secs(1.0), StorageKind::RemoteTape))
        );
        assert_eq!(
            q.pop(),
            Some((SimTime::from_secs(2.0), StorageKind::LocalDisk))
        );
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_time_and_kind_breaks_ties_by_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        q.push(t, StorageKind::RemoteDisk);
        q.push(t, StorageKind::RemoteDisk);
        assert_eq!(q.pop(), Some((t, StorageKind::RemoteDisk)));
        assert_eq!(q.pop(), Some((t, StorageKind::RemoteDisk)));
    }

    #[test]
    fn plan_gate_skips_after_settled_walk() {
        let mut g = PlanGate::default();
        assert!(g.needs_walk(), "fresh queues must be walked once");
        g.walked(2);
        assert!(g.needs_walk(), "undecided candidates keep the walk alive");
        g.walked(0);
        assert!(!g.needs_walk(), "all decided: the walk is skippable");
        g.dirty = true;
        assert!(g.needs_walk(), "requeue traffic re-arms the walk");
    }
}
