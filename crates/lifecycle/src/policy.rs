//! Retention policies over a dataset's dump history.
//!
//! A simulation that checkpoints every few iterations accumulates dump
//! files forever unless something thins the history. The policy here is
//! the classic backup-rotation shape (proxmox-backup's `prune.rs` is the
//! reference mold): `keep_last` protects the N newest dumps outright and
//! `keep_daily` keeps the newest dump of each of the N most recent
//! virtual days. Everything not covered by a keep window is marked for
//! removal; the engine then deletes the files and drops their catalog
//! rows.
//!
//! The planner is *order-independent*: it sorts the dump list internally
//! (newest first, by iteration — the unique per-dataset key), so callers
//! can hand it dumps in any order and two plans over permutations of the
//! same history are identical. The newest dump is never marked for
//! removal, whatever the policy says — pruning must not be able to erase
//! the only restartable state.

use msr_meta::DumpRec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why a dump survives the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Inside the `keep_last` window.
    KeepLast,
    /// Newest dump of one of the `keep_daily` most recent virtual days.
    KeepDaily,
    /// The newest dump overall: always kept, whatever the policy says.
    Newest,
    /// The policy has no keep field set — everything is kept.
    NoPolicy,
}

/// The planner's verdict on one dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// Retained, with the (first) rule that protected it.
    Keep(KeepReason),
    /// Covered by no keep window: prune the file and its catalog row.
    Remove,
}

impl Mark {
    /// Whether this verdict retains the dump.
    pub fn keeps(self) -> bool {
        matches!(self, Mark::Keep(_))
    }
}

/// A serde-typed retention policy over dump timestamps.
///
/// With neither field set the policy keeps everything (retention is
/// opt-in). `day_secs` is the length of one *virtual* day — bucketing for
/// `keep_daily` uses the simulated clock, so the default 86 400 s only
/// makes sense for workloads that actually span days of virtual time;
/// tests and quick-scale benches shrink it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Keep the N newest dumps unconditionally.
    #[serde(default)]
    pub keep_last: Option<u32>,
    /// Keep the newest dump of each of the N most recent virtual days
    /// that contain one.
    #[serde(default)]
    pub keep_daily: Option<u32>,
    /// Length of one virtual day, seconds (the `keep_daily` bucket).
    #[serde(default = "default_day_secs")]
    pub day_secs: f64,
}

fn default_day_secs() -> f64 {
    86_400.0
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy::keep_all()
    }
}

impl RetentionPolicy {
    /// The no-op policy: nothing is ever pruned.
    pub fn keep_all() -> RetentionPolicy {
        RetentionPolicy {
            keep_last: None,
            keep_daily: None,
            day_secs: default_day_secs(),
        }
    }

    /// Keep the `n` newest dumps.
    pub fn with_keep_last(mut self, n: u32) -> Self {
        self.keep_last = Some(n);
        self
    }

    /// Keep the newest dump of each of the `n` most recent virtual days.
    pub fn with_keep_daily(mut self, n: u32) -> Self {
        self.keep_daily = Some(n);
        self
    }

    /// Override the virtual-day length, seconds.
    pub fn with_day_secs(mut self, secs: f64) -> Self {
        self.day_secs = secs;
        self
    }

    /// Whether any keep field is set (i.e. pruning can happen at all).
    pub fn is_active(&self) -> bool {
        self.keep_last.is_some() || self.keep_daily.is_some()
    }

    /// Plan the whole history: one `(iter, Mark)` per dump, sorted by
    /// iteration ascending. Input order does not matter.
    pub fn plan(&self, dumps: &[DumpRec]) -> Vec<(u32, Mark)> {
        let mut newest_first: Vec<&DumpRec> = dumps.iter().collect();
        newest_first.sort_by_key(|d| std::cmp::Reverse(d.iter));

        let mut marks: BTreeMap<u32, Mark> = BTreeMap::new();
        if !self.is_active() {
            for d in &newest_first {
                marks.insert(d.iter, Mark::Keep(KeepReason::NoPolicy));
            }
            return marks.into_iter().collect();
        }
        if let Some(n) = self.keep_last {
            for d in newest_first.iter().take(n as usize) {
                marks
                    .entry(d.iter)
                    .or_insert(Mark::Keep(KeepReason::KeepLast));
            }
        }
        if let Some(n) = self.keep_daily {
            let day = self.day_secs.max(f64::MIN_POSITIVE);
            let mut days_seen: Vec<i64> = Vec::new();
            for d in &newest_first {
                let bucket = (d.written_secs / day).floor() as i64;
                if days_seen.contains(&bucket) {
                    continue;
                }
                if days_seen.len() >= n as usize {
                    break;
                }
                days_seen.push(bucket);
                marks
                    .entry(d.iter)
                    .or_insert(Mark::Keep(KeepReason::KeepDaily));
            }
        }
        if let Some(d) = newest_first.first() {
            marks
                .entry(d.iter)
                .or_insert(Mark::Keep(KeepReason::Newest));
        }
        for d in &newest_first {
            marks.entry(d.iter).or_insert(Mark::Remove);
        }
        marks.into_iter().collect()
    }

    /// Just the iterations the plan removes, ascending.
    pub fn prune_list(&self, dumps: &[DumpRec]) -> Vec<u32> {
        self.plan(dumps)
            .into_iter()
            .filter(|&(_, m)| m == Mark::Remove)
            .map(|(iter, _)| iter)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msr_meta::{DatasetId, DumpState};

    fn dump(iter: u32, written_secs: f64) -> DumpRec {
        DumpRec {
            dataset: DatasetId(0),
            iter,
            written_secs,
            bytes: 1024,
            last_access_secs: written_secs,
            reads: 0,
            state: DumpState::Resident,
        }
    }

    #[test]
    fn no_policy_keeps_everything() {
        let dumps: Vec<DumpRec> = (0..5).map(|i| dump(i * 6, f64::from(i))).collect();
        let plan = RetentionPolicy::keep_all().plan(&dumps);
        assert!(plan.iter().all(|&(_, m)| m.keeps()));
    }

    #[test]
    fn keep_last_protects_the_newest_window() {
        let dumps: Vec<DumpRec> = (0..6).map(|i| dump(i * 6, f64::from(i) * 10.0)).collect();
        let policy = RetentionPolicy::keep_all().with_keep_last(2);
        let pruned = policy.prune_list(&dumps);
        assert_eq!(pruned, vec![0, 6, 12, 18]);
    }

    #[test]
    fn keep_daily_keeps_the_newest_dump_per_day() {
        // Two dumps per 100 s "day", four days of history.
        let dumps: Vec<DumpRec> = (0..8).map(|i| dump(i, f64::from(i) * 50.0)).collect();
        let policy = RetentionPolicy::keep_all()
            .with_keep_daily(2)
            .with_day_secs(100.0);
        let plan: BTreeMap<u32, Mark> = policy.plan(&dumps).into_iter().collect();
        // Days (newest first): bucket 3 holds iters 6,7; bucket 2 holds 4,5.
        assert_eq!(plan[&7], Mark::Keep(KeepReason::KeepDaily));
        assert_eq!(plan[&5], Mark::Keep(KeepReason::KeepDaily));
        for iter in [0, 1, 2, 3, 4, 6] {
            assert_eq!(plan[&iter], Mark::Remove, "iter {iter}");
        }
    }

    #[test]
    fn keep_last_zero_still_keeps_the_newest_dump() {
        let dumps: Vec<DumpRec> = (0..3).map(|i| dump(i, f64::from(i))).collect();
        let policy = RetentionPolicy::keep_all().with_keep_last(0);
        let plan: BTreeMap<u32, Mark> = policy.plan(&dumps).into_iter().collect();
        assert_eq!(plan[&2], Mark::Keep(KeepReason::Newest));
        assert_eq!(plan[&0], Mark::Remove);
        assert_eq!(plan[&1], Mark::Remove);
    }

    #[test]
    fn plan_is_order_independent() {
        let mut dumps: Vec<DumpRec> = (0..10).map(|i| dump(i * 3, f64::from(i) * 40.0)).collect();
        let policy = RetentionPolicy::keep_all()
            .with_keep_last(2)
            .with_keep_daily(3)
            .with_day_secs(100.0);
        let reference = policy.plan(&dumps);
        // Deterministic pseudo-shuffles.
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..16 {
            for i in (1..dumps.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                dumps.swap(i, j);
            }
            assert_eq!(policy.plan(&dumps), reference);
        }
    }
}
