//! # msr-lifecycle — tiered data lifecycle for the MSR testbed
//!
//! The paper's multi-storage architecture gives every dataset a *location*
//! (local disk, remote disk, remote tape) chosen at creation. This crate
//! adds the missing half of that story: what happens to the data **after**
//! the run, as it ages. Three mechanisms, all deterministic and driven by
//! explicit ticks:
//!
//! - **Auto-migration** ([`LifecycleEngine`]) — cold datasets step down
//!   the tier ladder, hot ones step back up, each move priced with the
//!   eq. (2) estimator against live queue depths and executed through the
//!   system's health-gated staging path.
//! - **Retention pruning** ([`RetentionPolicy`]) — `keep_last` /
//!   `keep_daily` windows over dump timestamps thin a run's checkpoint
//!   history; expired dumps are deleted from storage and the catalog.
//! - **Tape vaulting** — tape-resident dumps idle past `vault_after` move
//!   to the vault ([`DumpState::Vaulted`](msr_meta::DumpState)): reads
//!   fail until a priced recall (hours of virtual latency) brings them
//!   back. Promotions recall automatically; [`LifecycleEngine::recall_dataset`]
//!   does it on demand.
//!
//! The engine never runs on a timer or a background thread. A scheduler
//! attaches it with `Scheduler::with_lifecycle` and ticks it between
//! dispatch rounds on the dispatcher thread; standalone consumers call
//! [`LifecycleEngine::tick`] themselves. Either way the decisions derive
//! from a single catalog snapshot and a fixed candidate order, so reports
//! stay bitwise identical at any `MSR_THREADS`.
//!
//! ```
//! use msr_lifecycle::{LifecycleConfig, LifecycleEngine, RetentionPolicy};
//! use msr_sim::SimDuration;
//!
//! let cfg = LifecycleConfig {
//!     demote_after: SimDuration::from_secs(600.0),
//!     retention: RetentionPolicy::keep_all().with_keep_last(3),
//!     ..LifecycleConfig::default()
//! };
//! let engine = LifecycleEngine::new(cfg);
//! assert_eq!(engine.config().promote_heat, 3);
//! ```

pub mod engine;
pub mod policy;

pub use engine::{
    tier_down, tier_up, LifecycleConfig, LifecycleEngine, MoveRec, TickReport, TickTotals,
};
pub use policy::{KeepReason, Mark, RetentionPolicy};
