//! The lifecycle engine: deterministic, tick-driven tier management.
//!
//! Each [`LifecycleEngine::tick`] runs four passes over the catalog, in a
//! fixed order, entirely on the calling thread:
//!
//! 1. **Retention prune** — every dataset's dump history is planned by the
//!    configured [`RetentionPolicy`]; dumps outside every keep window are
//!    deleted from storage and their catalog rows dropped.
//! 2. **Demotion** — datasets idle for at least `demote_after` move one
//!    tier *down* (local disk → remote disk → tape), coldest first, priced
//!    with the eq. (2) estimator against the live
//!    [`LoadBoard`](msr_core::LoadBoard) queue depths.
//! 3. **Promotion** — datasets whose heat counter crossed `promote_heat`
//!    within `promote_window` move one tier *up*, hottest first. A tape
//!    dataset's vaulted dumps are recalled (each recall paying the tape's
//!    configured recall latency) before the migration reads them.
//! 4. **Vaulting** — tape-resident datasets idle for at least
//!    `vault_after` have their dumps moved to the vault: the bytes stay on
//!    tape but every read fails with `StorageError::Vaulted` until a
//!    recall brings them back.
//!
//! Migrations execute through [`MsrSystem::migrate_dataset`], so they
//! respect circuit-breaker health, refuse offline or full destinations,
//! occupy the load board's background queues while streaming and emit
//! `migrate` observability spans. Every decision is made from a single
//! catalog snapshot taken at the top of the tick and candidates are
//! ordered by `(recency, id)` — two ticks over the same state make the
//! same moves regardless of worker count, so scheduled runs with a
//! lifecycle attached stay bitwise reproducible at any `MSR_THREADS`.

use crate::policy::RetentionPolicy;
use msr_core::MsrSystem;
use msr_meta::{AccessMode, DatasetRec, DumpState, Location, RunId};
use msr_obs::{ops, Layer};
use msr_predict::{fetch_estimate, profile_for, AccessSummary};
use msr_runtime::{Dims3, Distribution, IoStrategy, Pattern, ProcGrid};
use msr_sim::SimDuration;
use msr_storage::{OpKind, StorageKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The tier ladder, downwards: where cold data goes next.
pub fn tier_down(kind: StorageKind) -> Option<StorageKind> {
    match kind {
        StorageKind::LocalDisk => Some(StorageKind::RemoteDisk),
        StorageKind::RemoteDisk => Some(StorageKind::RemoteTape),
        StorageKind::RemoteTape => None,
    }
}

/// The tier ladder, upwards: where hot data goes next.
pub fn tier_up(kind: StorageKind) -> Option<StorageKind> {
    match kind {
        StorageKind::RemoteTape => Some(StorageKind::RemoteDisk),
        StorageKind::RemoteDisk => Some(StorageKind::LocalDisk),
        StorageKind::LocalDisk => None,
    }
}

/// Tuning knobs of the engine. All windows are *virtual* time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// Idle time after which a dataset is demoted one tier down.
    pub demote_after: SimDuration,
    /// Accesses (since the last promotion or heat reset) that make a
    /// dataset promotion-eligible.
    pub promote_heat: u64,
    /// A promotion candidate's last access must fall within this window —
    /// heat without recency is history, not demand.
    pub promote_window: SimDuration,
    /// Idle time after which a tape-resident dataset's dumps move to the
    /// vault.
    pub vault_after: SimDuration,
    /// Migration budget per tick (demotions + promotions). Pruning,
    /// vaulting and recalls are not counted — they move no bytes between
    /// resources.
    pub max_moves_per_tick: u32,
    /// Dump-history retention, planned per dataset every tick.
    pub retention: RetentionPolicy,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            demote_after: SimDuration::from_secs(600.0),
            promote_heat: 3,
            promote_window: SimDuration::from_secs(300.0),
            vault_after: SimDuration::from_secs(3600.0),
            max_moves_per_tick: 4,
            retention: RetentionPolicy::keep_all(),
        }
    }
}

/// One executed migration (demotion or promotion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoveRec {
    /// Owning run.
    pub run: u64,
    /// Dataset name.
    pub dataset: String,
    /// Source tier.
    pub from: StorageKind,
    /// Destination tier.
    pub to: StorageKind,
    /// Dump files moved.
    pub files: u32,
    /// Payload bytes moved.
    pub bytes: u64,
    /// eq. (2) price at decision time: per-dump estimate × dump count ×
    /// (1 + queue depths on both endpoints), seconds.
    pub predicted_secs: f64,
    /// What the migration actually took, virtual seconds.
    pub actual_secs: f64,
}

/// What one tick did.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TickReport {
    /// Stored datasets examined (busy and disabled ones excluded).
    pub scanned: u64,
    /// Datasets skipped because their run is currently admitted.
    pub skipped_busy: u64,
    /// Dump files pruned from storage and catalog.
    pub pruned_files: u64,
    /// Bytes those files held.
    pub pruned_bytes: u64,
    /// Cold datasets moved one tier down.
    pub demotions: Vec<MoveRec>,
    /// Hot datasets moved one tier up.
    pub promotions: Vec<MoveRec>,
    /// Dumps moved to the tape vault.
    pub vaulted: u64,
    /// Vaulted dumps recalled (each paying the tape's recall latency).
    pub recalls: u64,
    /// Recalls that failed (outage, fault injection); the owning
    /// promotion is abandoned for this tick, never retried in a loop.
    pub recall_failures: u64,
}

impl TickReport {
    /// Migrations executed this tick.
    pub fn moves(&self) -> usize {
        self.demotions.len() + self.promotions.len()
    }
}

/// Running totals across ticks — what a scheduler folds into its report.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TickTotals {
    /// Ticks executed.
    pub ticks: u64,
    /// Demotions across all ticks.
    pub demotions: u64,
    /// Promotions across all ticks.
    pub promotions: u64,
    /// Dump files pruned.
    pub pruned_files: u64,
    /// Bytes pruned.
    pub pruned_bytes: u64,
    /// Dumps vaulted.
    pub vaulted: u64,
    /// Dumps recalled.
    pub recalls: u64,
    /// Failed recalls.
    pub recall_failures: u64,
}

impl TickTotals {
    /// Fold another accumulator in (e.g. per-epoch scheduler totals into
    /// a whole-experiment ledger).
    pub fn merge(&mut self, other: &TickTotals) {
        self.ticks += other.ticks;
        self.demotions += other.demotions;
        self.promotions += other.promotions;
        self.pruned_files += other.pruned_files;
        self.pruned_bytes += other.pruned_bytes;
        self.vaulted += other.vaulted;
        self.recalls += other.recalls;
        self.recall_failures += other.recall_failures;
    }

    /// Fold one tick's report in.
    pub fn absorb(&mut self, t: &TickReport) {
        self.ticks += 1;
        self.demotions += t.demotions.len() as u64;
        self.promotions += t.promotions.len() as u64;
        self.pruned_files += t.pruned_files;
        self.pruned_bytes += t.pruned_bytes;
        self.vaulted += t.vaulted;
        self.recalls += t.recalls;
        self.recall_failures += t.recall_failures;
    }
}

/// The engine. Stateless between ticks — every decision re-derives from
/// the catalog, so it can be shared, rebuilt or attached to a scheduler
/// freely.
#[derive(Debug, Clone)]
pub struct LifecycleEngine {
    cfg: LifecycleConfig,
    grid: ProcGrid,
}

impl Default for LifecycleEngine {
    fn default() -> Self {
        LifecycleEngine::new(LifecycleConfig::default())
    }
}

impl LifecycleEngine {
    /// An engine over `cfg`, migrating on a 1×1×1 grid.
    pub fn new(cfg: LifecycleConfig) -> LifecycleEngine {
        LifecycleEngine {
            cfg,
            grid: ProcGrid::new(1, 1, 1),
        }
    }

    /// The process grid migrations stream with.
    pub fn with_grid(mut self, grid: ProcGrid) -> Self {
        self.grid = grid;
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LifecycleConfig {
        &self.cfg
    }

    /// One full lifecycle pass over `sys`.
    pub fn tick(&self, sys: &MsrSystem) -> TickReport {
        self.tick_excluding(sys, &BTreeSet::new())
    }

    /// One full pass, skipping datasets owned by `busy` runs (a scheduler
    /// passes its admitted runs so in-flight data is never moved under a
    /// queued request).
    pub fn tick_excluding(&self, sys: &MsrSystem, busy: &BTreeSet<RunId>) -> TickReport {
        let mut report = TickReport::default();
        let mut live: Vec<DatasetRec> = Vec::new();
        for d in sys.catalog.lock().all_datasets() {
            if busy.contains(&d.run) {
                report.skipped_busy += 1;
                continue;
            }
            if let Location::Stored(_) = d.location {
                report.scanned += 1;
                live.push(d);
            }
        }
        let mut moves_left = self.cfg.max_moves_per_tick;
        self.prune(sys, &live, &mut report);
        self.demote(sys, &live, &mut moves_left, &mut report);
        self.promote(sys, &live, &mut moves_left, &mut report);
        self.vault_cold(sys, &live, &mut report);

        let rec = sys.obs_recorder();
        if rec.enabled() {
            rec.instant(
                Layer::Meta,
                "lifecycle",
                ops::LIFECYCLE_TICK,
                sys.clock.now(),
                &format!(
                    "scanned {}, pruned {}, demoted {}, promoted {}, vaulted {}, recalled {}",
                    report.scanned,
                    report.pruned_files,
                    report.demotions.len(),
                    report.promotions.len(),
                    report.vaulted,
                    report.recalls
                ),
            );
        }
        report
    }

    /// Recall every vaulted dump of `(run, name)` so its data is readable
    /// again, charging each recall's latency to the global clock. Returns
    /// the number of dumps recalled, or the first failure's description.
    /// The explicit entry point for consumers that need vaulted data *now*
    /// rather than waiting for a promotion tick.
    pub fn recall_dataset(&self, sys: &MsrSystem, run: RunId, name: &str) -> Result<u64, String> {
        let Some(d) = sys
            .catalog
            .lock()
            .all_datasets()
            .into_iter()
            .find(|d| d.run == run && d.name == name)
        else {
            return Err(format!("no dataset {name} in run{}", run.0));
        };
        let mut report = TickReport::default();
        if self.recall_all(sys, &d, &mut report) {
            Ok(report.recalls)
        } else {
            Err(format!(
                "{} of {} vaulted dumps failed to recall",
                report.recall_failures,
                report.recall_failures + report.recalls
            ))
        }
    }

    // ---- passes ------------------------------------------------------------

    fn prune(&self, sys: &MsrSystem, live: &[DatasetRec], report: &mut TickReport) {
        if !self.cfg.retention.is_active() {
            return;
        }
        let rec = sys.obs_recorder();
        for d in live {
            // OverWrite datasets rewrite one file in place: there is no
            // history to thin.
            if d.amode != AccessMode::Create {
                continue;
            }
            let Location::Stored(kind) = d.location else {
                continue;
            };
            let dumps = sys.catalog.lock().dumps_of(d.id);
            let removals = self.cfg.retention.prune_list(&dumps);
            if removals.is_empty() {
                continue;
            }
            let Some(res) = sys.resource(kind) else {
                continue;
            };
            // Remote deletes need a live connection; connecting is
            // idempotent and free when one is already up.
            if let Ok(cost) = res.lock().connect() {
                sys.clock.advance(cost.time);
            }
            for iter in removals {
                // Tolerate a file that is already gone (failover may have
                // scattered dumps); refuse to touch bookkeeping while the
                // resource is unreachable.
                // Chunk-plane aware: a chunked dump's delete releases its
                // store references and garbage-collects frames no other
                // dump shares; raw dumps take the plain delete path.
                let gone = match sys.engine.delete_dump(&res, &dump_file(d, iter)) {
                    Ok(cost) => {
                        sys.clock.advance(cost.time);
                        true
                    }
                    Err(msr_runtime::RuntimeError::Storage(
                        msr_storage::StorageError::NotFound(_),
                    )) => true,
                    Err(_) => false,
                };
                if !gone {
                    continue;
                }
                let bytes = dumps
                    .iter()
                    .find(|x| x.iter == iter)
                    .map(|x| x.bytes)
                    .unwrap_or(0);
                if sys.catalog.lock().remove_dump(d.id, iter) {
                    report.pruned_files += 1;
                    report.pruned_bytes += bytes;
                    if rec.enabled() {
                        rec.count(Layer::Meta, "lifecycle", ops::PRUNE, sys.clock.now(), 1.0);
                    }
                }
            }
        }
    }

    fn demote(
        &self,
        sys: &MsrSystem,
        live: &[DatasetRec],
        moves_left: &mut u32,
        report: &mut TickReport,
    ) {
        let now = sys.clock.now().as_secs();
        let mut cands: Vec<&DatasetRec> = live
            .iter()
            .filter(|d| {
                let Location::Stored(kind) = d.location else {
                    return false;
                };
                tier_down(kind).is_some()
                    && now - d.last_access_secs >= self.cfg.demote_after.as_secs()
            })
            .collect();
        cands.sort_by(|a, b| {
            a.last_access_secs
                .total_cmp(&b.last_access_secs)
                .then(a.id.cmp(&b.id))
        });
        for d in cands {
            if *moves_left == 0 {
                return;
            }
            let Location::Stored(from) = d.location else {
                continue;
            };
            let to = tier_down(from).expect("filtered to demotable tiers");
            if let Some(m) = self.migrate(sys, d, from, to) {
                *moves_left -= 1;
                report.demotions.push(m);
            }
        }
    }

    fn promote(
        &self,
        sys: &MsrSystem,
        live: &[DatasetRec],
        moves_left: &mut u32,
        report: &mut TickReport,
    ) {
        let now = sys.clock.now().as_secs();
        let mut cands: Vec<&DatasetRec> = live
            .iter()
            .filter(|d| {
                let Location::Stored(kind) = d.location else {
                    return false;
                };
                tier_up(kind).is_some()
                    && d.heat >= self.cfg.promote_heat
                    && now - d.last_access_secs <= self.cfg.promote_window.as_secs()
            })
            .collect();
        cands.sort_by(|a, b| b.heat.cmp(&a.heat).then(a.id.cmp(&b.id)));
        for d in cands {
            if *moves_left == 0 {
                return;
            }
            let Location::Stored(from) = d.location else {
                continue;
            };
            let to = tier_up(from).expect("filtered to promotable tiers");
            // A migration reads every dump; vaulted ones must be recalled
            // first. A failed recall (outage) abandons this candidate for
            // the tick — degrade, never wedge.
            if from == StorageKind::RemoteTape && !self.recall_all(sys, d, report) {
                continue;
            }
            if let Some(m) = self.migrate(sys, d, from, to) {
                *moves_left -= 1;
                sys.catalog.lock().reset_heat(d.id);
                report.promotions.push(m);
            }
        }
    }

    fn vault_cold(&self, sys: &MsrSystem, live: &[DatasetRec], report: &mut TickReport) {
        let now = sys.clock.now().as_secs();
        let rec = sys.obs_recorder();
        let Some(res) = sys.resource(StorageKind::RemoteTape) else {
            return;
        };
        for d in live {
            if d.location != Location::Stored(StorageKind::RemoteTape)
                || now - d.last_access_secs < self.cfg.vault_after.as_secs()
            {
                continue;
            }
            let dumps = sys.catalog.lock().dumps_of(d.id);
            for dump in dumps {
                if dump.state != DumpState::Resident {
                    continue;
                }
                // An offline tape or a missing file leaves the dump
                // resident; the next tick retries.
                // Chunk-plane aware: a chunked dump vaults its manifest
                // and drops a vault reference on each of its chunks — a
                // shared frame leaves disk only when *every* dump that
                // references it is vaulted.
                if let Ok(cost) = sys.engine.vault_dump(&res, &dump_file(d, dump.iter)) {
                    sys.clock.advance(cost.time);
                    sys.catalog
                        .lock()
                        .set_dump_state(d.id, dump.iter, DumpState::Vaulted);
                    report.vaulted += 1;
                    if rec.enabled() {
                        rec.count(Layer::Meta, "lifecycle", ops::VAULT, sys.clock.now(), 1.0);
                    }
                }
            }
        }
    }

    // ---- helpers -----------------------------------------------------------

    /// Recall every vaulted dump of `d`. Returns whether all succeeded.
    fn recall_all(&self, sys: &MsrSystem, d: &DatasetRec, report: &mut TickReport) -> bool {
        let Some(res) = sys.resource(StorageKind::RemoteTape) else {
            return false;
        };
        let rec = sys.obs_recorder();
        let mut all_ok = true;
        let dumps = sys.catalog.lock().dumps_of(d.id);
        if dumps.iter().any(|x| x.state == DumpState::Vaulted) {
            // Recalls need a live connection; best-effort — if the tape
            // is down the per-dump recalls below fail and are counted.
            if let Ok(cost) = res.lock().connect() {
                sys.clock.advance(cost.time);
            }
        }
        for dump in dumps {
            if dump.state != DumpState::Vaulted {
                continue;
            }
            match sys.engine.recall_dump(&res, &dump_file(d, dump.iter)) {
                Ok(cost) => {
                    sys.clock.advance(cost.time);
                    sys.catalog
                        .lock()
                        .set_dump_state(d.id, dump.iter, DumpState::Resident);
                    report.recalls += 1;
                    if rec.enabled() {
                        rec.count(Layer::Meta, "lifecycle", ops::RECALL, sys.clock.now(), 1.0);
                    }
                }
                Err(_) => {
                    report.recall_failures += 1;
                    all_ok = false;
                }
            }
        }
        all_ok
    }

    /// Price one candidate migration with the eq. (2) estimator inflated
    /// by the live queue depths on both endpoints, then execute it through
    /// the system's staging path. `None` when the move was refused
    /// (breaker open, destination offline or full, mid-stream fault) — the
    /// dataset stays where it is and the next tick reconsiders.
    fn migrate(
        &self,
        sys: &MsrSystem,
        d: &DatasetRec,
        from: StorageKind,
        to: StorageKind,
    ) -> Option<MoveRec> {
        if !sys.health.allows(to) {
            return None;
        }
        let dst = sys.resource(to)?;
        if !dst.lock().is_online() {
            return None;
        }
        let dumps = sys.catalog.lock().dumps_of(d.id).len().max(1) as f64;
        let per_dump = self.estimate_dump(sys, d, to);
        let pressure = 1.0 + (sys.load.depth(from) + sys.load.depth(to)) as f64;
        let predicted_secs = per_dump * dumps * pressure;
        match sys.migrate_dataset(d.run, &d.name, to, self.grid) {
            Ok(m) => Some(MoveRec {
                run: d.run.0,
                dataset: d.name.clone(),
                from,
                to,
                files: m.files,
                bytes: m.bytes,
                predicted_secs,
                actual_secs: m.total_time().as_secs(),
            }),
            Err(_) => None,
        }
    }

    /// eq. (2) single-dump write estimate onto `to`, seconds. Falls back
    /// to 0 when the dataset's recorded shape cannot be rebuilt (the price
    /// then reflects queue pressure only).
    fn estimate_dump(&self, sys: &MsrSystem, d: &DatasetRec, to: StorageKind) -> f64 {
        let Some(res) = sys.resource(to) else {
            return 0.0;
        };
        let dims = Dims3 {
            x: d.dims.first().copied().unwrap_or(1),
            y: d.dims.get(1).copied().unwrap_or(1),
            z: d.dims.get(2).copied().unwrap_or(1),
        };
        let Ok(pattern) = Pattern::parse(&d.pattern) else {
            return 0.0;
        };
        let Ok(dist) = Distribution::new(dims, d.etype.size(), pattern, self.grid) else {
            return 0.0;
        };
        let strategy = IoStrategy::parse(&d.strategy).unwrap_or(IoStrategy::Collective);
        let profile = profile_for(sys.predictor().map(|p| &p.db), &res, OpKind::Write);
        // Chunked datasets price their learned post-dedup/post-compression
        // bytes; raw datasets scale by 1.0 (a no-op).
        let access = AccessSummary::of(&dist).scaled(sys.predicted_ratio(&d.name));
        fetch_estimate(&profile, strategy, &access).as_secs()
    }
}

/// The on-storage path of one dump of `d`.
fn dump_file(d: &DatasetRec, iter: u32) -> String {
    match d.amode {
        AccessMode::Create => format!("{}.t{iter:05}", d.path),
        AccessMode::OverWrite => d.path.clone(),
    }
}
