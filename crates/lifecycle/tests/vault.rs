//! Tape vaulting and recall: latency accounting, readability, and
//! degradation under an injected outage.

use msr_core::{DatasetSpec, FutureUse, LocationHint, MsrSystem};
use msr_lifecycle::{LifecycleConfig, LifecycleEngine};
use msr_meta::{DumpState, ElementType, RunId};
use msr_runtime::{IoStrategy, ProcGrid};
use msr_sim::SimDuration;
use msr_storage::{profiles::DEFAULT_RECALL_SECS, StorageKind};

/// Write an archival history (dumps at iterations 0, 3, 6) pinned to the
/// tape resource.
fn write_tape_history(sys: &MsrSystem, app: &str) -> RunId {
    let mut s = sys
        .session()
        .app(app)
        .user("arch")
        .iterations(6)
        .build()
        .unwrap();
    let spec = DatasetSpec::builder("chk")
        .element(ElementType::F32)
        .cube(8)
        .frequency(3)
        .hint(LocationHint::RemoteTape)
        .future_use(FutureUse::Archive)
        .build();
    let bytes = spec.snapshot_bytes() as usize;
    let h = s.open(spec).unwrap();
    let run = s.run_id();
    for iter in 0..=6 {
        if s.dumps_at(h, iter) {
            s.write_iteration(h, iter, &vec![3u8; bytes]).unwrap();
        }
    }
    s.finalize().unwrap();
    run
}

fn vault_fast() -> LifecycleConfig {
    LifecycleConfig {
        vault_after: SimDuration::from_secs(100.0),
        demote_after: SimDuration::from_secs(1e9),
        promote_heat: 5,
        promote_window: SimDuration::from_secs(300.0),
        ..LifecycleConfig::default()
    }
}

#[test]
fn vaulted_dumps_are_unreadable_until_a_priced_recall() {
    let sys = MsrSystem::testbed(31);
    let run = write_tape_history(&sys, "arch");
    let engine = LifecycleEngine::new(vault_fast());
    let grid = ProcGrid::new(1, 1, 1);

    // Idle past the vault window (and past the promotion window, so the
    // engine shelves instead of promoting).
    sys.clock.advance(SimDuration::from_secs(400.0));
    let t = engine.tick(&sys);
    assert_eq!(t.vaulted, 3, "all three dumps shelved");
    assert_eq!(t.recalls, 0);

    // A vaulted dump is not readable.
    let err = sys.read_dataset(run, "chk", 6, grid, IoStrategy::Collective);
    assert!(err.is_err(), "vaulted data must not serve reads");

    // Explicit recall: every dump pays the configured recall latency.
    let before = sys.clock.now();
    let recalled = engine.recall_dataset(&sys, run, "chk").unwrap();
    assert_eq!(recalled, 3);
    assert_eq!(
        sys.clock.now().since(before),
        SimDuration::from_secs(3.0 * DEFAULT_RECALL_SECS),
        "recall latency is charged per dump, no jitter"
    );
    let (data, _) = sys
        .read_dataset(run, "chk", 6, grid, IoStrategy::Collective)
        .expect("recalled data reads again");
    assert!(!data.is_empty());

    // Recalling resident data is free and counts nothing.
    let again = engine.recall_dataset(&sys, run, "chk").unwrap();
    assert_eq!(again, 0);
}

#[test]
fn recall_during_outage_degrades_and_recovers_without_wedging() {
    let sys = MsrSystem::testbed(32);
    let run = write_tape_history(&sys, "arch");
    let engine = LifecycleEngine::new(vault_fast());

    sys.clock.advance(SimDuration::from_secs(400.0));
    assert_eq!(engine.tick(&sys).vaulted, 3);

    // Make it hot (heat 3 from the writes + 3 reads >= promote_heat 5)
    // while the tape is down: the promotion's recalls fail, the engine
    // counts them and returns — degraded, not wedged.
    for _ in 0..3 {
        let at = sys.clock.now().as_secs();
        sys.catalog.lock().note_access(run, "chk", Some(6), at);
    }
    sys.set_resource_online(StorageKind::RemoteTape, false);
    let t = engine.tick(&sys);
    assert_eq!(t.recall_failures, 3);
    assert_eq!(t.recalls, 0);
    assert!(t.promotions.is_empty(), "promotion abandoned for the tick");
    assert!(
        engine.recall_dataset(&sys, run, "chk").is_err(),
        "explicit recall reports the outage"
    );

    // Outage over: the very next tick recalls and promotes.
    sys.set_resource_online(StorageKind::RemoteTape, true);
    let t2 = engine.tick(&sys);
    assert_eq!(t2.recalls, 3);
    assert_eq!(t2.recall_failures, 0);
    assert_eq!(t2.promotions.len(), 1);
    assert_eq!(t2.promotions[0].from, StorageKind::RemoteTape);
    assert_eq!(t2.promotions[0].to, StorageKind::RemoteDisk);
    let id = {
        let mut c = sys.catalog.lock();
        c.find_dataset(run, "chk").unwrap().id
    };
    assert!(
        sys.catalog
            .lock()
            .dumps_of(id)
            .iter()
            .all(|d| d.state == DumpState::Resident),
        "recalled dumps are resident at their new home"
    );
}
