//! End-to-end retention and migration behaviour of the lifecycle engine
//! against a full testbed system.

use msr_core::{DatasetSpec, FutureUse, LocationHint, MsrSystem};
use msr_lifecycle::{LifecycleConfig, LifecycleEngine, RetentionPolicy};
use msr_meta::{ElementType, Location, RunId};
use msr_sim::SimDuration;
use msr_storage::StorageKind;

/// Write a checkpoint history (dumps at iterations 0, 3, …) pinned to
/// local disk, through the plain session API.
fn write_history(sys: &MsrSystem, app: &str, iterations: u32) -> RunId {
    let mut s = sys
        .session()
        .app(app)
        .user("sim")
        .iterations(iterations)
        .build()
        .unwrap();
    let spec = DatasetSpec::builder("chk")
        .element(ElementType::F32)
        .cube(8)
        .frequency(3)
        .hint(LocationHint::LocalDisk)
        .future_use(FutureUse::Checkpoint)
        .build();
    let bytes = spec.snapshot_bytes() as usize;
    let h = s.open(spec).unwrap();
    let run = s.run_id();
    for iter in 0..=iterations {
        if s.dumps_at(h, iter) {
            s.write_iteration(h, iter, &vec![7u8; bytes]).unwrap();
        }
    }
    s.finalize().unwrap();
    run
}

fn quiet(cfg: LifecycleConfig) -> LifecycleConfig {
    // Windows far beyond any test horizon: the returned config only does
    // what the test explicitly re-enables.
    LifecycleConfig {
        demote_after: SimDuration::from_secs(1e9),
        promote_heat: u64::MAX,
        vault_after: SimDuration::from_secs(1e9),
        ..cfg
    }
}

#[test]
fn retention_prunes_cold_history_never_the_newest() {
    let sys = MsrSystem::testbed(21);
    let run = write_history(&sys, "ckpt", 12); // dumps at 0, 3, 6, 9, 12
    let engine = LifecycleEngine::new(quiet(LifecycleConfig {
        retention: RetentionPolicy::keep_all().with_keep_last(2),
        ..LifecycleConfig::default()
    }));

    let before = sys.usage()[&StorageKind::LocalDisk];
    let t = engine.tick(&sys);
    assert_eq!(t.pruned_files, 3, "5 dumps, keep_last 2");
    assert!(t.pruned_bytes > 0);
    assert!(t.demotions.is_empty() && t.promotions.is_empty());
    assert_eq!(t.vaulted, 0);
    assert!(
        sys.usage()[&StorageKind::LocalDisk] < before,
        "pruning frees fast-tier bytes"
    );

    let id = {
        let mut c = sys.catalog.lock();
        c.find_dataset(run, "chk").unwrap().id
    };
    let iters: Vec<u32> = sys
        .catalog
        .lock()
        .dumps_of(id)
        .iter()
        .map(|d| d.iter)
        .collect();
    assert_eq!(iters, vec![9, 12], "newest window survives");

    // A second tick over the already-thinned history is a no-op.
    let t2 = engine.tick(&sys);
    assert_eq!(t2.pruned_files, 0);
}

#[test]
fn cold_data_demotes_and_hot_data_promotes_back() {
    let sys = MsrSystem::testbed(22);
    let run = write_history(&sys, "ckpt", 12);
    let engine = LifecycleEngine::new(LifecycleConfig {
        demote_after: SimDuration::from_secs(500.0),
        promote_heat: 3,
        promote_window: SimDuration::from_secs(300.0),
        vault_after: SimDuration::from_secs(1e9),
        ..LifecycleConfig::default()
    });

    // Freshly written data is neither cold nor promotable (already on the
    // top tier).
    let t0 = engine.tick(&sys);
    assert!(t0.demotions.is_empty() && t0.promotions.is_empty());

    // Idle past the window: one demotion, local disk -> remote disk.
    sys.clock.advance(SimDuration::from_secs(600.0));
    let t1 = engine.tick(&sys);
    assert_eq!(t1.demotions.len(), 1);
    let m = &t1.demotions[0];
    assert_eq!(
        (m.from, m.to),
        (StorageKind::LocalDisk, StorageKind::RemoteDisk)
    );
    assert_eq!(m.files, 5);
    assert!(m.predicted_secs > 0.0, "eq.(2) priced the move");
    assert!(m.actual_secs > 0.0);
    let loc = {
        let mut c = sys.catalog.lock();
        c.find_dataset(run, "chk").unwrap().location
    };
    assert_eq!(loc, Location::Stored(StorageKind::RemoteDisk));

    // Three reads inside the window make it hot: promoted straight back.
    for _ in 0..3 {
        let at = sys.clock.now().as_secs();
        sys.catalog.lock().note_access(run, "chk", Some(12), at);
    }
    let t2 = engine.tick(&sys);
    assert_eq!(t2.promotions.len(), 1);
    assert_eq!(t2.promotions[0].to, StorageKind::LocalDisk);
    let (loc, heat) = {
        let mut c = sys.catalog.lock();
        let d = c.find_dataset(run, "chk").unwrap();
        (d.location, d.heat)
    };
    assert_eq!(loc, Location::Stored(StorageKind::LocalDisk));
    assert_eq!(heat, 0, "promotion resets the heat counter");
}

#[test]
fn migration_budget_caps_moves_per_tick() {
    let sys = MsrSystem::testbed(23);
    for i in 0..3 {
        write_history(&sys, &format!("ckpt-{i}"), 6);
    }
    let engine = LifecycleEngine::new(LifecycleConfig {
        demote_after: SimDuration::from_secs(100.0),
        max_moves_per_tick: 2,
        vault_after: SimDuration::from_secs(1e9),
        promote_heat: u64::MAX,
        ..LifecycleConfig::default()
    });
    sys.clock.advance(SimDuration::from_secs(500.0));
    let t1 = engine.tick(&sys);
    assert_eq!(t1.demotions.len(), 2, "budget caps the tick");
    // Still-cold data keeps stepping down on later ticks (remote disk ->
    // tape), never more than the budget per tick, until everything
    // bottoms out on tape.
    let mut ticks = 0;
    loop {
        let t = engine.tick(&sys);
        assert!(t.demotions.len() <= 2);
        if t.demotions.is_empty() {
            break;
        }
        ticks += 1;
        assert!(ticks < 10, "demotions must converge");
    }
    let locations: Vec<_> = {
        let mut c = sys.catalog.lock();
        c.all_datasets().iter().map(|d| d.location).collect()
    };
    assert!(locations
        .iter()
        .all(|&l| l == Location::Stored(StorageKind::RemoteTape)));
}

#[test]
fn ticks_are_identical_at_any_thread_count() {
    let scenario = || {
        let sys = MsrSystem::testbed(33);
        let run = write_history(&sys, "ckpt", 12);
        sys.clock.advance(SimDuration::from_secs(700.0));
        let engine = LifecycleEngine::new(LifecycleConfig {
            demote_after: SimDuration::from_secs(500.0),
            retention: RetentionPolicy::keep_all().with_keep_last(3),
            vault_after: SimDuration::from_secs(1e9),
            ..LifecycleConfig::default()
        });
        let t1 = engine.tick(&sys);
        let at = sys.clock.now().as_secs();
        sys.catalog.lock().note_access(run, "chk", Some(12), at);
        let t2 = engine.tick(&sys);
        (
            serde_json::to_string(&t1).unwrap(),
            serde_json::to_string(&t2).unwrap(),
            format!("{:?}", sys.usage()),
            format!("{}", sys.clock.now()),
        )
    };
    let seq = rayon::with_threads(1, scenario);
    let par = rayon::with_threads(4, scenario);
    assert_eq!(
        seq, par,
        "tick reports are bitwise thread-count independent"
    );
}
