//! Lifecycle over content-addressed data: retention pruning must
//! garbage-collect unreferenced chunks, and vaulting/recall must move a
//! chunked dump's frames with it — never stranding a chunk another dump
//! still references, never serving a vaulted one.

use msr_core::{ChunkPolicy, Codec, DatasetSpec, FutureUse, LocationHint, MsrSystem};
use msr_lifecycle::{LifecycleConfig, LifecycleEngine, RetentionPolicy};
use msr_meta::{ElementType, RunId};
use msr_runtime::{IoStrategy, ProcGrid};
use msr_sim::SimDuration;
use msr_storage::StorageKind;

/// Checkpoint payload: an LCG base shared by every dump of `name` plus a
/// per-iteration churn window, so consecutive dumps dedup heavily but
/// each contributes some unique chunks (the ones pruning must GC).
fn churned(name: &str, iter: u32, len: usize) -> Vec<u8> {
    let seed = name.bytes().fold(0x9e3779b97f4a7c15u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    });
    let stream = |seed: u64, n: usize| -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect()
    };
    let mut out = stream(seed, len);
    let window = (len / 16).max(1);
    let at = (iter as usize).wrapping_mul(977) % len.max(1);
    let churn = stream(
        seed ^ u64::from(iter).wrapping_mul(0x2545f4914f6cdd1d),
        window,
    );
    for (i, b) in churn.into_iter().enumerate() {
        out[(at + i) % len] = b;
    }
    out
}

/// Write a chunked checkpoint history (dumps at iterations 0, 3, …).
fn write_chunked_history(
    sys: &MsrSystem,
    app: &str,
    hint: LocationHint,
    future_use: FutureUse,
    iterations: u32,
) -> RunId {
    let mut s = sys
        .session()
        .app(app)
        .user("sim")
        .iterations(iterations)
        .build()
        .unwrap();
    let spec = DatasetSpec::builder("chk")
        .element(ElementType::F32)
        .cube(16)
        .frequency(3)
        .hint(hint)
        .future_use(future_use)
        .chunked(ChunkPolicy::cdc(8))
        .compression(Codec::Lz4Like(1))
        .build();
    let bytes = spec.snapshot_bytes() as usize;
    let h = s.open(spec).unwrap();
    let run = s.run_id();
    for iter in 0..=iterations {
        if s.dumps_at(h, iter) {
            s.write_iteration(h, iter, &churned("chk", iter, bytes))
                .unwrap();
        }
    }
    s.finalize().unwrap();
    run
}

fn quiet(cfg: LifecycleConfig) -> LifecycleConfig {
    LifecycleConfig {
        demote_after: SimDuration::from_secs(1e9),
        promote_heat: u64::MAX,
        vault_after: SimDuration::from_secs(1e9),
        ..cfg
    }
}

/// Retention pruning of chunked dumps drops their manifests and
/// garbage-collects every chunk whose last reference died, while the
/// surviving dumps keep reading back bitwise intact.
#[test]
fn retention_pruning_garbage_collects_unreferenced_chunks() {
    let sys = MsrSystem::testbed(61);
    let run = write_chunked_history(
        &sys,
        "ckpt",
        LocationHint::LocalDisk,
        FutureUse::Checkpoint,
        12,
    );
    let name = sys
        .resource(StorageKind::LocalDisk)
        .unwrap()
        .lock()
        .name()
        .to_owned();
    let plane = sys.engine.chunk_plane();
    assert_eq!(plane.manifest_count(&name), 5, "dumps at 0,3,6,9,12");
    let before = plane.store_stats(&name).expect("store populated");
    assert_eq!(before.gcs, 0);

    let engine = LifecycleEngine::new(quiet(LifecycleConfig {
        retention: RetentionPolicy::keep_all().with_keep_last(2),
        ..LifecycleConfig::default()
    }));
    let t = engine.tick(&sys);
    assert_eq!(t.pruned_files, 3, "5 dumps, keep_last 2");

    let plane = sys.engine.chunk_plane();
    assert_eq!(t.pruned_files as usize, 5 - plane.manifest_count(&name));
    let after = plane.store_stats(&name).expect("store survives pruning");
    assert!(
        after.gcs > 0,
        "pruned dumps' unique chunks must be collected: {after:?}"
    );
    assert!(
        after.stored_bytes < before.stored_bytes,
        "GC must free physical bytes ({} -> {})",
        before.stored_bytes,
        after.stored_bytes
    );

    // The survivors still read back exactly.
    let grid = ProcGrid::new(1, 1, 1);
    for iter in [9u32, 12] {
        let (data, _) = sys
            .read_dataset(run, "chk", iter, grid, IoStrategy::Collective)
            .expect("kept dump reads");
        assert_eq!(data, churned("chk", iter, data.len()));
    }
}

/// Vaulting a chunked archive makes it unreadable until recalled; the
/// recall restores the manifests and frames, and every dump reads back
/// bitwise identical afterwards.
#[test]
fn vault_and_recall_roundtrip_chunked_dumps() {
    let sys = MsrSystem::testbed(62);
    let run = write_chunked_history(
        &sys,
        "arch",
        LocationHint::RemoteTape,
        FutureUse::Archive,
        6,
    );
    let engine = LifecycleEngine::new(LifecycleConfig {
        vault_after: SimDuration::from_secs(100.0),
        demote_after: SimDuration::from_secs(1e9),
        promote_heat: u64::MAX,
        ..LifecycleConfig::default()
    });
    let grid = ProcGrid::new(1, 1, 1);

    sys.clock.advance(SimDuration::from_secs(400.0));
    let t = engine.tick(&sys);
    assert_eq!(t.vaulted, 3, "dumps at 0, 3, 6 shelved");
    assert!(
        sys.read_dataset(run, "chk", 6, grid, IoStrategy::Collective)
            .is_err(),
        "vaulted chunked data must not serve reads"
    );

    let recalled = engine.recall_dataset(&sys, run, "chk").unwrap();
    assert_eq!(recalled, 3);
    for iter in [0u32, 3, 6] {
        let (data, _) = sys
            .read_dataset(run, "chk", iter, grid, IoStrategy::Collective)
            .expect("recalled dump reads");
        assert_eq!(
            data,
            churned("chk", iter, data.len()),
            "iter {iter} corrupt after vault/recall"
        );
    }
}
