//! # msr-net — simulated wide-area network
//!
//! The paper's remote storage (SDSC disks and HPSS tape) is reached from the
//! compute site (ANL) over a year-2000 WAN; the metadata database lives at
//! NWU. This crate replaces the physical network with a graph of
//! [`site::Site`]s connected by [`link::Link`]s, each with latency,
//! bandwidth, jitter, background load and an up/down flag.
//!
//! Costs follow the classic α–β model per link: a transfer of `bytes` over a
//! route costs `Σ_link (latency + bytes / effective_bandwidth)`, where the
//! effective bandwidth is the nominal bandwidth divided among the transfer's
//! own parallel streams plus any configured background load. Outage
//! injection (link or whole site) feeds the reliability experiment in §5 of
//! the paper.

pub mod connection;
pub mod delta;
pub mod error;
pub mod failure;
pub mod lease;
pub mod link;
pub mod network;
pub mod site;

pub use connection::{Connection, ProtocolCosts};
pub use delta::DeltaPlan;
pub use error::NetError;
pub use failure::OutageSchedule;
pub use lease::{LeasePool, LeaseStats};
pub use link::{LinkId, LinkSpec};
pub use network::Network;
pub use site::SiteId;

/// Convenience result alias for network operations.
pub type NetResult<T> = Result<T, NetError>;

/// The network as shared by storage resources and the experiment harness:
/// reads (routing, transfers) take the read lock, outage/load injection the
/// write lock.
pub type SharedNetwork = std::sync::Arc<parking_lot::RwLock<Network>>;

/// Wrap a network for sharing.
pub fn share(n: Network) -> SharedNetwork {
    std::sync::Arc::new(parking_lot::RwLock::new(n))
}
