//! Named network sites (compute centers, storage centers).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque handle to a site registered in a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub(crate) u16);

impl SiteId {
    /// The raw index (stable for the lifetime of the network).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// A site in the simulated internetwork.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Human-readable name, e.g. `"ANL"`, `"SDSC"`, `"NWU"`.
    pub name: String,
    /// Whether the site is reachable. A down site behaves as if every
    /// adjacent link were down (maintenance window, power event).
    pub up: bool,
}

impl Site {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Site {
            name: name.into(),
            up: true,
        }
    }
}
