//! Chunk-aware delta transfers: ship only what the destination lacks.
//!
//! When a dump is content-addressed (see `msr-chunk`), a cross-site copy
//! does not need to move every byte: chunks whose digests already exist at
//! the destination are satisfied locally, and only the missing frames plus
//! the manifest header cross the WAN. This module plans and prices such a
//! transfer over a [`crate::Network`] route, without performing any I/O —
//! the runtime's chunk plane does the actual reads and writes; the network
//! layer only needs to know *how many bytes* move to charge the α–β cost.

use std::collections::BTreeSet;

use msr_chunk::{ChunkRef, Digest, Manifest};
use msr_sim::SimDuration;

use crate::link::LinkId;
use crate::network::Network;
use crate::NetResult;

/// The outcome of matching a dump's manifest against the digests already
/// present at a destination: which frames must cross the wire and which are
/// deduplicated away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPlan {
    /// Manifest header + chunk table bytes (always shipped).
    pub header_bytes: u64,
    /// Stored (compressed) bytes of frames absent at the destination.
    pub ship_bytes: u64,
    /// Stored bytes of frames the destination already holds.
    pub dedup_bytes: u64,
    /// Logical (uncompressed) bytes the dump represents.
    pub logical_bytes: u64,
    /// Digests that must be shipped, in first-appearance dump order.
    pub missing: Vec<Digest>,
}

impl DeltaPlan {
    /// Total bytes that cross the wire: header plus missing frames.
    pub fn wire_bytes(&self) -> u64 {
        self.header_bytes + self.ship_bytes
    }

    /// Fraction of stored payload bytes saved by dedup (0.0 when the
    /// destination has nothing, 1.0 when it has everything).
    pub fn dedup_fraction(&self) -> f64 {
        let total = self.ship_bytes + self.dedup_bytes;
        if total == 0 {
            0.0
        } else {
            self.dedup_bytes as f64 / total as f64
        }
    }
}

/// Match `manifest` against the digests already `present` at the
/// destination. Duplicate refs within the manifest count once: the first
/// occurrence ships the frame, later ones find it already landed.
pub fn plan(manifest: &Manifest, present: &BTreeSet<Digest>) -> DeltaPlan {
    plan_refs(
        manifest.header_bytes(),
        manifest.logical,
        &manifest.chunks,
        present,
    )
}

/// [`plan`] over a bare chunk table, for callers that track refs without a
/// full manifest (e.g. a replication queue).
pub fn plan_refs(
    header_bytes: u64,
    logical_bytes: u64,
    chunks: &[ChunkRef],
    present: &BTreeSet<Digest>,
) -> DeltaPlan {
    let mut landed: BTreeSet<Digest> = present.clone();
    let mut missing = Vec::new();
    let mut ship = 0u64;
    let mut dedup = 0u64;
    for c in chunks {
        if landed.insert(c.digest) {
            ship += u64::from(c.clen);
            missing.push(c.digest);
        } else {
            dedup += u64::from(c.clen);
        }
    }
    DeltaPlan {
        header_bytes,
        ship_bytes: ship,
        dedup_bytes: dedup,
        logical_bytes,
        missing,
    }
}

/// Price a planned delta over `route`: the α–β cost of moving only
/// [`DeltaPlan::wire_bytes`], honoring link load and outages exactly like
/// any other transfer.
pub fn transfer_cost(
    net: &Network,
    route: &[LinkId],
    delta: &DeltaPlan,
    streams: u32,
) -> NetResult<SimDuration> {
    net.transfer(route, delta.wire_bytes(), streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use msr_chunk::{split, ChunkPolicy, Codec, IngestSpec};

    fn manifest_of(data: &[u8]) -> Manifest {
        let spec = IngestSpec::chunked(ChunkPolicy::fixed(4)).with_codec(Codec::None);
        let refs: Vec<ChunkRef> = split(data, &spec.policy)
            .into_iter()
            .map(|r| ChunkRef {
                digest: Digest::of(&data[r.clone()]),
                ulen: r.len() as u32,
                clen: r.len() as u32,
            })
            .collect();
        Manifest {
            policy: spec.policy,
            codec: spec.codec,
            logical: data.len() as u64,
            chunks: refs,
            inline: false,
        }
    }

    const KIB4: usize = 4 * 1024;

    #[test]
    fn cold_destination_ships_everything() {
        let m = manifest_of(&[7u8; 3 * KIB4]);
        let p = plan(&m, &BTreeSet::new());
        // All-identical 4 KiB chunks: one unique digest ships, the two
        // repeats dedup against it mid-flight.
        assert_eq!(p.missing.len(), 1);
        assert_eq!(p.ship_bytes, KIB4 as u64);
        assert_eq!(p.dedup_bytes, 2 * KIB4 as u64);
        assert_eq!(p.wire_bytes(), p.header_bytes + KIB4 as u64);
        assert_eq!(p.logical_bytes, 3 * KIB4 as u64);
    }

    #[test]
    fn warm_destination_ships_only_missing() {
        let mut data = vec![1u8; 2 * KIB4];
        data.extend_from_slice(&[2u8; KIB4]);
        let m = manifest_of(&data);
        let have: BTreeSet<Digest> = [m.chunks[0].digest].into_iter().collect();
        let p = plan(&m, &have);
        assert_eq!(p.missing, vec![m.chunks[2].digest]);
        assert_eq!(p.ship_bytes, KIB4 as u64);
        assert_eq!(p.dedup_bytes, 2 * KIB4 as u64);
        assert!(p.dedup_fraction() > 0.6);
    }

    #[test]
    fn delta_transfer_is_cheaper_than_full() {
        let mut net = Network::new(7);
        let a = net.add_site("anl");
        let b = net.add_site("sdsc");
        net.add_link(a, b, LinkSpec::wan(4.0));
        let route = net.route(a, b).unwrap();

        let m = manifest_of(&[9u8; 64 * 1024]);
        let p = plan(&m, &BTreeSet::new());
        let delta = transfer_cost(&net, &route, &p, 1).unwrap();
        let full = net.transfer_nominal(&route, m.logical, 1);
        assert!(delta < full, "delta {delta:?} should beat full {full:?}");
    }
}
