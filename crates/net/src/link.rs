//! Point-to-point links and their cost model.

use crate::site::SiteId;
use msr_sim::{Jitter, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque handle to a link registered in a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// Raw index of the link.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a handle from a raw index (persistence / test support). The
    /// caller must ensure the index is valid for the target network.
    pub fn from_index(i: usize) -> Self {
        LinkId(u32::try_from(i).expect("link index fits in u32"))
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}

/// Static description of a bidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way latency charged once per request on this link.
    pub latency: SimDuration,
    /// Nominal bandwidth in megabytes per second (decimal MB).
    pub bandwidth_mb_s: f64,
    /// Multiplicative noise applied to each transfer on this link.
    pub jitter: Jitter,
}

impl LinkSpec {
    /// A noise-free link, handy in unit tests.
    pub fn ideal(latency: SimDuration, bandwidth_mb_s: f64) -> Self {
        LinkSpec {
            latency,
            bandwidth_mb_s,
            jitter: Jitter::None,
        }
    }

    /// Year-2000 WAN profile between national labs: ~25 ms latency and a
    /// sustained application-level rate of a few hundred KB/s, with WAN
    /// jitter. `rate_mb_s` sets the sustained rate.
    pub fn wan(rate_mb_s: f64) -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(25.0),
            bandwidth_mb_s: rate_mb_s,
            jitter: Jitter::wan_default(),
        }
    }

    /// Campus/metro link: 2 ms latency, tens of MB/s.
    pub fn campus(rate_mb_s: f64) -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(2.0),
            bandwidth_mb_s: rate_mb_s,
            jitter: Jitter::LogNormal { sigma: 0.03 },
        }
    }

    /// Pure transfer time of `bytes` at the nominal rate (no latency, no
    /// contention, no jitter).
    pub fn nominal_transfer(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_mb_s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs(bytes as f64 / (self.bandwidth_mb_s * 1e6))
    }
}

/// Live state of a link inside a network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Endpoint A.
    pub a: SiteId,
    /// Endpoint B.
    pub b: SiteId,
    /// Cost parameters.
    pub spec: LinkSpec,
    /// Whether the link is currently usable.
    pub up: bool,
    /// Equivalent number of competing background streams; effective
    /// per-stream bandwidth is `bandwidth / (own_streams + background_load)`.
    pub background_load: f64,
}

impl Link {
    pub(crate) fn new(a: SiteId, b: SiteId, spec: LinkSpec) -> Self {
        Link {
            a,
            b,
            spec,
            up: true,
            background_load: 0.0,
        }
    }

    /// The opposite endpoint, if `s` is one of this link's endpoints.
    pub fn other_end(&self, s: SiteId) -> Option<SiteId> {
        if s == self.a {
            Some(self.b)
        } else if s == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Cost of moving `bytes` across this link as one request with
    /// `streams` parallel streams from the same transfer sharing it.
    /// Latency is paid once; the payload is divided among streams which
    /// share the (possibly loaded) bandwidth, so the stream count cancels
    /// for the data term and only contention from background load remains.
    pub fn transfer_cost(&self, bytes: u64, streams: u32) -> SimDuration {
        let streams = streams.max(1) as f64;
        let eff_bw = self.spec.bandwidth_mb_s / (streams + self.background_load.max(0.0));
        let per_stream_bytes = bytes as f64 / streams;
        let data = if eff_bw > 0.0 {
            SimDuration::from_secs(per_stream_bytes / (eff_bw * 1e6))
        } else {
            SimDuration::ZERO
        };
        self.spec.latency + data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(bw: f64) -> Link {
        Link::new(
            SiteId(0),
            SiteId(1),
            LinkSpec::ideal(SimDuration::from_millis(10.0), bw),
        )
    }

    #[test]
    fn nominal_transfer_scales_linearly() {
        let spec = LinkSpec::ideal(SimDuration::ZERO, 2.0);
        assert_eq!(spec.nominal_transfer(2_000_000).as_secs(), 1.0);
        assert_eq!(spec.nominal_transfer(4_000_000).as_secs(), 2.0);
    }

    #[test]
    fn transfer_cost_includes_latency_once() {
        let l = link(1.0);
        let c = l.transfer_cost(1_000_000, 1);
        assert!((c.as_secs() - 1.01).abs() < 1e-9);
    }

    #[test]
    fn parallel_streams_do_not_speed_up_a_single_shared_link() {
        // The per-stream share shrinks exactly as the payload split does, so
        // total time is unchanged: the WAN pipe is the bottleneck.
        let l = link(1.0);
        let one = l.transfer_cost(1_000_000, 1);
        let four = l.transfer_cost(1_000_000, 4);
        assert!(one.approx_eq(four, 1e-9));
    }

    #[test]
    fn background_load_slows_transfers() {
        let mut l = link(1.0);
        let clean = l.transfer_cost(1_000_000, 1);
        l.background_load = 1.0; // one competing stream → half bandwidth
        let loaded = l.transfer_cost(1_000_000, 1);
        assert!((loaded.as_secs() - 0.01 - 2.0).abs() < 1e-9);
        assert!(loaded > clean);
    }

    #[test]
    fn other_end_resolution() {
        let l = link(1.0);
        assert_eq!(l.other_end(SiteId(0)), Some(SiteId(1)));
        assert_eq!(l.other_end(SiteId(1)), Some(SiteId(0)));
        assert_eq!(l.other_end(SiteId(7)), None);
    }

    #[test]
    fn zero_bandwidth_charges_latency_only() {
        let l = Link::new(
            SiteId(0),
            SiteId(1),
            LinkSpec::ideal(SimDuration::from_secs(0.5), 0.0),
        );
        assert_eq!(l.transfer_cost(1_000_000, 1).as_secs(), 0.5);
    }
}
