//! Stateful client↔server connections with protocol costs.
//!
//! The paper's eq. (1) charges `T_conn` once when a storage connection is
//! established and `T_connclose` when it is torn down; every subsequent
//! request rides the established route. [`ProtocolCosts`] captures the
//! fixed per-protocol components (calibrated to Table 1), and
//! [`Connection`] pairs them with a concrete route through the network.

use crate::link::LinkId;
use crate::network::Network;
use crate::site::SiteId;
use crate::NetResult;
use msr_sim::SimDuration;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Fixed protocol overheads of a storage access protocol (SRB-like).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolCosts {
    /// Server-side connection establishment work added on top of the route
    /// round trip (authentication, session setup).
    pub conn_setup: SimDuration,
    /// Connection teardown cost.
    pub conn_teardown: SimDuration,
    /// Extra server processing charged on every request (marshalling,
    /// catalog touch).
    pub per_request: SimDuration,
}

impl ProtocolCosts {
    /// A protocol with no fixed costs (local access).
    pub fn free() -> Self {
        ProtocolCosts {
            conn_setup: SimDuration::ZERO,
            conn_teardown: SimDuration::ZERO,
            per_request: SimDuration::ZERO,
        }
    }
}

/// An established connection between a client site and a server site.
#[derive(Debug, Clone)]
pub struct Connection {
    /// Client endpoint.
    pub client: SiteId,
    /// Server endpoint.
    pub server: SiteId,
    route: Vec<LinkId>,
    costs: ProtocolCosts,
}

impl Connection {
    /// Establish a connection, returning it together with the setup cost
    /// (route round trip + protocol setup). Fails when no live route exists.
    pub fn establish(
        net: &Network,
        client: SiteId,
        server: SiteId,
        costs: ProtocolCosts,
    ) -> NetResult<(SimDuration, Connection)> {
        let route = net.route(client, server)?;
        // Setup handshake ≈ one round trip plus protocol work.
        let rtt = net.route_latency(&route) * 2.0;
        let cost = rtt + costs.conn_setup;
        Ok((
            cost,
            Connection {
                client,
                server,
                route,
                costs,
            },
        ))
    }

    /// The route currently used by this connection.
    pub fn route(&self) -> &[LinkId] {
        &self.route
    }

    /// Whether the connection's route is currently live.
    pub fn is_up(&self, net: &Network) -> bool {
        net.route_up(&self.route)
    }

    /// Cost of one data request of `bytes` with `streams` parallel streams
    /// (jittered; the "actual" path). Jitter draws from the network's
    /// shared stream; see [`Connection::request_with`].
    pub fn request(&self, net: &Network, bytes: u64, streams: u32) -> NetResult<SimDuration> {
        let wire = net.transfer(&self.route, bytes, streams)?;
        Ok(wire + self.costs.per_request)
    }

    /// [`Connection::request`] with jitter drawn from the caller's own
    /// stream, so cost sequences per resource do not depend on how
    /// concurrent traffic on other connections interleaves.
    pub fn request_with(
        &self,
        net: &Network,
        bytes: u64,
        streams: u32,
        rng: &mut StdRng,
    ) -> NetResult<SimDuration> {
        let wire = net.transfer_with(&self.route, bytes, streams, rng)?;
        Ok(wire + self.costs.per_request)
    }

    /// Deterministic model cost of one data request (predictor path).
    pub fn request_nominal(&self, net: &Network, bytes: u64, streams: u32) -> SimDuration {
        net.transfer_nominal(&self.route, bytes, streams) + self.costs.per_request
    }

    /// Cost of a minimal control message (seek, stat): route latency plus
    /// per-request protocol work.
    pub fn control_nominal(&self, net: &Network) -> SimDuration {
        net.route_latency(&self.route) + self.costs.per_request
    }

    /// Teardown cost.
    pub fn close_cost(&self) -> SimDuration {
        self.costs.conn_teardown
    }

    /// Re-resolve the route after topology changes; returns false when the
    /// endpoints are now unreachable.
    pub fn refresh_route(&mut self, net: &Network) -> bool {
        match net.route(self.client, self.server) {
            Ok(r) => {
                self.route = r;
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    fn net() -> (Network, SiteId, SiteId) {
        let mut n = Network::new(1);
        let a = n.add_site("ANL");
        let s = n.add_site("SDSC");
        n.add_link(a, s, LinkSpec::ideal(SimDuration::from_millis(25.0), 1.0));
        (n, a, s)
    }

    fn srb_like() -> ProtocolCosts {
        ProtocolCosts {
            conn_setup: SimDuration::from_secs(0.39),
            conn_teardown: SimDuration::from_micros(200.0),
            per_request: SimDuration::from_millis(5.0),
        }
    }

    #[test]
    fn establish_charges_rtt_plus_setup() {
        let (n, a, s) = net();
        let (cost, conn) = Connection::establish(&n, a, s, srb_like()).unwrap();
        assert!((cost.as_secs() - (0.05 + 0.39)).abs() < 1e-9);
        assert_eq!(conn.route().len(), 1);
    }

    #[test]
    fn request_nominal_composes_wire_and_protocol() {
        let (n, a, s) = net();
        let (_, conn) = Connection::establish(&n, a, s, srb_like()).unwrap();
        let c = conn.request_nominal(&n, 1_000_000, 1);
        assert!((c.as_secs() - (0.025 + 1.0 + 0.005)).abs() < 1e-9);
    }

    #[test]
    fn local_connection_is_free() {
        let (n, a, _) = net();
        let (cost, conn) = Connection::establish(&n, a, a, ProtocolCosts::free()).unwrap();
        assert_eq!(cost, SimDuration::ZERO);
        assert_eq!(conn.request_nominal(&n, 1 << 30, 1), SimDuration::ZERO);
    }

    #[test]
    fn connection_detects_outage_and_refresh_fails() {
        let (mut n, a, s) = net();
        let (_, mut conn) = Connection::establish(&n, a, s, srb_like()).unwrap();
        assert!(conn.is_up(&n));
        let l = conn.route()[0];
        n.set_link_up(l, false);
        assert!(!conn.is_up(&n));
        assert!(conn.request(&n, 1, 1).is_err());
        assert!(!conn.refresh_route(&n), "no alternative route exists");
    }

    #[test]
    fn refresh_route_finds_detour() {
        let (mut n, a, s) = net();
        let w = n.add_site("NWU");
        n.add_link(a, w, LinkSpec::ideal(SimDuration::from_millis(2.0), 10.0));
        n.add_link(w, s, LinkSpec::ideal(SimDuration::from_millis(30.0), 1.0));
        let (_, mut conn) = Connection::establish(&n, a, s, srb_like()).unwrap();
        n.set_link_up(conn.route()[0], false);
        assert!(conn.refresh_route(&n));
        assert_eq!(conn.route().len(), 2);
        assert!(conn.is_up(&n));
    }

    #[test]
    fn control_message_cost() {
        let (n, a, s) = net();
        let (_, conn) = Connection::establish(&n, a, s, srb_like()).unwrap();
        assert!((conn.control_nominal(&n).as_secs() - 0.03).abs() < 1e-9);
    }
}
