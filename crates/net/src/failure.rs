//! Scheduled outages for reliability experiments.
//!
//! The paper's final §5 example assumes "the remote tape system is down for
//! maintenance". [`OutageSchedule`] lets an experiment declare maintenance
//! windows in virtual time and ask whether a component should currently be
//! up, which the harness then applies to links, sites or storage resources.

use msr_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A half-open outage window `[from, until)` in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive). Use [`SimTime::INFINITY`] for an
    /// open-ended outage.
    pub until: SimTime,
}

impl Outage {
    /// Whether `t` falls inside the window.
    pub fn covers(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A set of outage windows for one component.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OutageSchedule {
    windows: Vec<Outage>,
}

impl OutageSchedule {
    /// A schedule with no outages.
    pub fn always_up() -> Self {
        Self::default()
    }

    /// Add an outage window `[from, until)` (seconds of virtual time).
    pub fn with_outage(mut self, from_secs: f64, until_secs: f64) -> Self {
        self.windows.push(Outage {
            from: SimTime::from_secs(from_secs),
            until: SimTime::from_secs(until_secs),
        });
        self
    }

    /// Add an outage that starts at `from_secs` and never ends.
    pub fn with_permanent_outage(mut self, from_secs: f64) -> Self {
        self.windows.push(Outage {
            from: SimTime::from_secs(from_secs),
            until: SimTime::INFINITY,
        });
        self
    }

    /// Should the component be up at virtual time `t`?
    pub fn is_up(&self, t: SimTime) -> bool {
        !self.windows.iter().any(|w| w.covers(t))
    }

    /// The next state-change boundary strictly after `t`, if any. The
    /// open-ended [`SimTime::INFINITY`] boundary is never a transition — a
    /// permanent outage has no recovery edge. Useful for event-driven
    /// experiment loops.
    pub fn next_transition(&self, t: SimTime) -> Option<SimTime> {
        self.windows
            .iter()
            .flat_map(|w| [w.from, w.until])
            .filter(|&b| b > t && b.is_finite())
            .min_by(|a, b| a.as_secs().total_cmp(&b.as_secs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_always_up() {
        let s = OutageSchedule::always_up();
        assert!(s.is_up(SimTime::EPOCH));
        assert!(s.is_up(SimTime::from_secs(1e9)));
        assert_eq!(s.next_transition(SimTime::EPOCH), None);
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let s = OutageSchedule::always_up().with_outage(10.0, 20.0);
        assert!(s.is_up(SimTime::from_secs(9.999)));
        assert!(!s.is_up(SimTime::from_secs(10.0)));
        assert!(!s.is_up(SimTime::from_secs(19.999)));
        assert!(s.is_up(SimTime::from_secs(20.0)));
    }

    #[test]
    fn overlapping_windows_compose() {
        let s = OutageSchedule::always_up()
            .with_outage(0.0, 5.0)
            .with_outage(3.0, 8.0);
        assert!(!s.is_up(SimTime::from_secs(4.0)));
        assert!(!s.is_up(SimTime::from_secs(6.0)));
        assert!(s.is_up(SimTime::from_secs(8.0)));
    }

    #[test]
    fn permanent_outage_never_recovers() {
        let s = OutageSchedule::always_up().with_permanent_outage(100.0);
        assert!(s.is_up(SimTime::from_secs(99.0)));
        assert!(!s.is_up(SimTime::from_secs(1e12)));
        assert!(!s.is_up(SimTime::from_secs(f64::MAX)));
    }

    #[test]
    fn permanent_outage_uses_infinity_sentinel() {
        let s = OutageSchedule::always_up().with_permanent_outage(100.0);
        // Onset is a transition; the open end is not.
        assert_eq!(
            s.next_transition(SimTime::EPOCH),
            Some(SimTime::from_secs(100.0))
        );
        assert_eq!(s.next_transition(SimTime::from_secs(100.0)), None);
        // A finite window ending at f64::MAX (no longer a magic value) still
        // transitions; only the true sentinel is open-ended.
        let fin = OutageSchedule::always_up().with_outage(0.0, f64::MAX);
        assert_eq!(
            fin.next_transition(SimTime::EPOCH),
            Some(SimTime::from_secs(f64::MAX))
        );
    }

    #[test]
    fn permanent_outage_onset_boundary() {
        let s = OutageSchedule::always_up().with_permanent_outage(50.0);
        assert!(s.is_up(SimTime::from_secs(49.999_999)));
        assert!(!s.is_up(SimTime::from_secs(50.0)));
    }

    #[test]
    fn next_transition_order() {
        let s = OutageSchedule::always_up().with_outage(10.0, 20.0);
        assert_eq!(
            s.next_transition(SimTime::EPOCH),
            Some(SimTime::from_secs(10.0))
        );
        assert_eq!(
            s.next_transition(SimTime::from_secs(15.0)),
            Some(SimTime::from_secs(20.0))
        );
        assert_eq!(s.next_transition(SimTime::from_secs(20.0)), None);
    }
}
