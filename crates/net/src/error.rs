//! Network error type.

use crate::site::SiteId;
use std::fmt;

/// Failures surfaced by the network simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A site handle did not belong to this network.
    UnknownSite(SiteId),
    /// No live route exists between the endpoints (links down, sites down,
    /// or disconnected topology).
    NoRoute {
        /// Source site.
        from: SiteId,
        /// Destination site.
        to: SiteId,
    },
    /// The connection's route went down after it was established.
    RouteDown,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownSite(s) => write!(f, "unknown site {s}"),
            NetError::NoRoute { from, to } => {
                write!(f, "no live route from {from} to {to}")
            }
            NetError::RouteDown => write!(f, "connection route is down"),
        }
    }
}

impl std::error::Error for NetError {}
