//! Connection keep-alive leases on the virtual timeline.
//!
//! Eq. (1) charges `T_conn` on every connection establishment and
//! `T_connclose` on teardown. A client that issues many requests against
//! the same server inside a short window should pay those once: the
//! [`LeasePool`] records, per key (a server endpoint, an open path, …),
//! *until when* a previously paid setup remains valid. A renewal inside
//! the TTL is a **hit** (setup cost skipped, lease extended); after the
//! TTL the lease has **expired** and the next acquisition pays setup
//! again, with the deferred teardown accounted at expiry instead of on
//! the caller's critical path.
//!
//! The pool is pure virtual-time bookkeeping — it holds no sockets or
//! handles, so the storage layer can wrap any resource with it without
//! touching the resource's own state machine.

use msr_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Cumulative accounting of one pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Acquisitions that found a live lease and skipped setup.
    pub hits: u64,
    /// Acquisitions that paid the full setup cost (no lease, or expired).
    pub misses: u64,
    /// Leases that lapsed (TTL elapsed or dropped explicitly).
    pub expirations: u64,
}

/// A table of virtual-time leases keyed by string.
#[derive(Debug)]
pub struct LeasePool {
    ttl: SimDuration,
    /// Key → (lease expiry, teardown cost owed when it lapses).
    leases: BTreeMap<String, (SimTime, SimDuration)>,
    stats: LeaseStats,
    /// Teardown time that lapsed leases paid off the critical path.
    deferred_teardown: SimDuration,
}

impl LeasePool {
    /// A pool whose leases stay warm for `ttl` of virtual time after each
    /// touch.
    pub fn new(ttl: SimDuration) -> Self {
        LeasePool {
            ttl,
            leases: BTreeMap::new(),
            stats: LeaseStats::default(),
            deferred_teardown: SimDuration::ZERO,
        }
    }

    /// The configured time-to-live.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Acquire `key` at `now`: returns `true` (a hit — the caller may skip
    /// its setup cost) when a live lease exists, else `false` (the caller
    /// pays setup and the lease starts). Either way the lease is extended
    /// to `now + ttl`, and `teardown` is what lapsing will owe.
    pub fn acquire(&mut self, key: &str, now: SimTime, teardown: SimDuration) -> bool {
        self.reap(now);
        let hit = self
            .leases
            .get(key)
            .is_some_and(|&(expires, _)| now < expires);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.leases
            .insert(key.to_owned(), (now + self.ttl, teardown));
        hit
    }

    /// Whether `key` holds a live lease at `now` (no side effects).
    pub fn is_live(&self, key: &str, now: SimTime) -> bool {
        self.leases
            .get(key)
            .is_some_and(|&(expires, _)| now < expires)
    }

    /// Drop one lease immediately (e.g. the leased state was invalidated
    /// by a write). Its teardown is accounted as deferred.
    pub fn invalidate(&mut self, key: &str) {
        if let Some((_, teardown)) = self.leases.remove(key) {
            self.stats.expirations += 1;
            self.deferred_teardown += teardown;
        }
    }

    /// Drop every lease immediately (e.g. the resource's circuit breaker
    /// tripped). Returns how many were live.
    pub fn drop_all(&mut self) -> usize {
        let n = self.leases.len();
        for (_, (_, teardown)) in std::mem::take(&mut self.leases) {
            self.stats.expirations += 1;
            self.deferred_teardown += teardown;
        }
        n
    }

    /// Retire leases whose TTL has elapsed by `now`, moving their teardown
    /// cost into the deferred account. Called by `acquire`; callers may
    /// also invoke it directly at settlement points.
    pub fn reap(&mut self, now: SimTime) {
        let lapsed: Vec<String> = self
            .leases
            .iter()
            .filter(|(_, &(expires, _))| now >= expires)
            .map(|(k, _)| k.clone())
            .collect();
        for key in lapsed {
            self.invalidate(&key);
        }
    }

    /// Live lease count (after no reaping — may include lapsed entries not
    /// yet settled).
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether no leases are outstanding.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// Cumulative hit/miss/expiry counts.
    pub fn stats(&self) -> LeaseStats {
        self.stats
    }

    /// Teardown time settled off the critical path so far.
    pub fn deferred_teardown(&self) -> SimDuration {
        self.deferred_teardown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn first_acquire_misses_then_hits_within_ttl() {
        let mut p = LeasePool::new(secs(10.0));
        assert!(!p.acquire("srv", at(0.0), secs(0.2)));
        assert!(p.acquire("srv", at(5.0), secs(0.2)));
        assert!(p.acquire("srv", at(14.9), secs(0.2)), "touch extended it");
        assert_eq!(p.stats().hits, 2);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn lapsed_lease_pays_setup_again_and_defers_teardown() {
        let mut p = LeasePool::new(secs(10.0));
        p.acquire("srv", at(0.0), secs(0.2));
        assert!(!p.acquire("srv", at(10.0), secs(0.2)), "ttl is exclusive");
        assert_eq!(p.stats().expirations, 1);
        assert_eq!(p.deferred_teardown(), secs(0.2));
    }

    #[test]
    fn keys_are_independent() {
        let mut p = LeasePool::new(secs(10.0));
        p.acquire("a", at(0.0), secs(0.1));
        assert!(!p.acquire("b", at(1.0), secs(0.1)));
        assert!(p.is_live("a", at(1.0)));
        p.invalidate("a");
        assert!(!p.is_live("a", at(1.0)));
        assert!(p.is_live("b", at(1.0)));
    }

    #[test]
    fn drop_all_settles_every_lease() {
        let mut p = LeasePool::new(secs(60.0));
        p.acquire("a", at(0.0), secs(0.1));
        p.acquire("b", at(0.0), secs(0.3));
        assert_eq!(p.drop_all(), 2);
        assert!(p.is_empty());
        assert_eq!(p.stats().expirations, 2);
        assert!(p.deferred_teardown().approx_eq(secs(0.4), 1e-12));
    }

    #[test]
    fn reap_only_touches_lapsed_leases() {
        let mut p = LeasePool::new(secs(5.0));
        p.acquire("old", at(0.0), secs(0.1));
        p.acquire("new", at(3.0), secs(0.1));
        p.reap(at(6.0));
        assert!(!p.is_live("old", at(6.0)));
        assert!(p.is_live("new", at(6.0)));
        assert_eq!(p.stats().expirations, 1);
    }
}
