//! The internetwork graph: sites, links, routing and transfers.

use crate::error::NetError;
use crate::link::{Link, LinkId, LinkSpec};
use crate::site::{Site, SiteId};
use crate::NetResult;
use msr_obs::{ops, Layer, Recorder};
use msr_sim::{stream_rng, Clock, SimDuration};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A graph of sites and bidirectional links with α–β transfer costs.
///
/// Mutating topology/state (adding sites, toggling outages, setting load)
/// takes `&mut self`; transfers take `&self` (only the jitter RNG mutates,
/// behind a mutex) so concurrent simulated streams can share the network.
#[derive(Debug)]
pub struct Network {
    sites: Vec<Site>,
    links: Vec<Link>,
    adj: Vec<Vec<LinkId>>,
    rng: Mutex<StdRng>,
    recorder: Recorder,
    clock: Clock,
}

impl Network {
    /// An empty network whose jitter draws from the given master seed.
    pub fn new(seed: u64) -> Self {
        Network {
            sites: Vec::new(),
            links: Vec::new(),
            adj: Vec::new(),
            rng: Mutex::new(stream_rng(seed, "network-jitter")),
            recorder: Recorder::disabled(),
            clock: Clock::new(),
        }
    }

    /// Attach an observability recorder; transfer spans and failure instants
    /// are stamped with `clock`'s current virtual time.
    pub fn set_observer(&mut self, recorder: Recorder, clock: Clock) {
        self.recorder = recorder;
        self.clock = clock;
    }

    /// Display name for a route: the endpoint sites of its first and last
    /// links (e.g. `"ANL-SDSC"`); a loopback route is `"local"`.
    fn route_name(&self, route: &[LinkId]) -> String {
        match (route.first(), route.last()) {
            (Some(&f), Some(&l)) => {
                let first = &self.links[f.index()];
                let last = &self.links[l.index()];
                // Orient: the first link's endpoint not shared with the rest.
                let start = if route.len() > 1 && (first.a == last.a || first.a == last.b) {
                    first.b
                } else {
                    first.a
                };
                let end = if last.b == start { last.a } else { last.b };
                format!("{}-{}", self.site_name(start), self.site_name(end))
            }
            _ => "local".to_owned(),
        }
    }

    /// Register a site; names should be unique but this is not enforced —
    /// lookups return the first match.
    pub fn add_site(&mut self, name: impl Into<String>) -> SiteId {
        let id = SiteId(u16::try_from(self.sites.len()).expect("too many sites"));
        self.sites.push(Site::new(name));
        self.adj.push(Vec::new());
        id
    }

    /// Find a site by name.
    pub fn site_by_name(&self, name: &str) -> Option<SiteId> {
        self.sites
            .iter()
            .position(|s| s.name == name)
            .map(|i| SiteId(i as u16))
    }

    /// Site name for display.
    pub fn site_name(&self, id: SiteId) -> &str {
        &self.sites[id.index()].name
    }

    /// Number of registered sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Add a bidirectional link between `a` and `b`.
    pub fn add_link(&mut self, a: SiteId, b: SiteId, spec: LinkSpec) -> LinkId {
        assert!(a.index() < self.sites.len() && b.index() < self.sites.len());
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(Link::new(a, b, spec));
        self.adj[a.index()].push(id);
        self.adj[b.index()].push(id);
        id
    }

    /// Inspect a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Bring a link up or down (maintenance / failure injection).
    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        self.links[id.index()].up = up;
    }

    /// Bring a whole site up or down. A down site is unroutable.
    pub fn set_site_up(&mut self, id: SiteId, up: bool) {
        self.sites[id.index()].up = up;
    }

    /// Whether the site is up.
    pub fn site_up(&self, id: SiteId) -> bool {
        self.sites[id.index()].up
    }

    /// Set the equivalent number of competing background streams on a link.
    pub fn set_background_load(&mut self, id: LinkId, load: f64) {
        self.links[id.index()].background_load = load.max(0.0);
    }

    fn link_usable(&self, l: &Link) -> bool {
        l.up && self.sites[l.a.index()].up && self.sites[l.b.index()].up
    }

    /// Shortest live route (by summed latency) between two sites, as a list
    /// of link ids. A route from a site to itself is the empty route.
    pub fn route(&self, from: SiteId, to: SiteId) -> NetResult<Vec<LinkId>> {
        if from.index() >= self.sites.len() {
            return Err(NetError::UnknownSite(from));
        }
        if to.index() >= self.sites.len() {
            return Err(NetError::UnknownSite(to));
        }
        if !self.sites[from.index()].up || !self.sites[to.index()].up {
            return Err(NetError::NoRoute { from, to });
        }
        if from == to {
            return Ok(Vec::new());
        }

        #[derive(PartialEq)]
        struct Entry(f64, SiteId);
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, o: &Self) -> Ordering {
                // Min-heap on latency: reverse the comparison.
                o.0.total_cmp(&self.0)
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }

        let n = self.sites.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<LinkId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(Entry(0.0, from));

        while let Some(Entry(d, u)) = heap.pop() {
            if d > dist[u.index()] {
                continue;
            }
            if u == to {
                break;
            }
            for &lid in &self.adj[u.index()] {
                let l = &self.links[lid.index()];
                if !self.link_usable(l) {
                    continue;
                }
                let Some(v) = l.other_end(u) else { continue };
                let nd = d + l.spec.latency.as_secs();
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    prev[v.index()] = Some(lid);
                    heap.push(Entry(nd, v));
                }
            }
        }

        if dist[to.index()].is_infinite() {
            return Err(NetError::NoRoute { from, to });
        }
        // Walk predecessors back to the source.
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let lid = prev[cur.index()].expect("reached site must have predecessor");
            path.push(lid);
            cur = self.links[lid.index()]
                .other_end(cur)
                .expect("link endpoint consistency");
        }
        path.reverse();
        Ok(path)
    }

    /// True when every link of `route` is currently usable.
    pub fn route_up(&self, route: &[LinkId]) -> bool {
        route
            .iter()
            .all(|&l| self.link_usable(&self.links[l.index()]))
    }

    /// Cost of one request moving `bytes` along `route` with `streams`
    /// parallel streams, including per-link jitter drawn from the network's
    /// own seeded stream. A `bytes = 0` request is a pure round-trip-shaped
    /// control message (pays latency only).
    ///
    /// The shared stream means concurrent callers consume draws in
    /// scheduling order; callers that need order-independent results (the
    /// concurrent-session scheduler overlaps service across resources)
    /// should pass their own serialized stream via
    /// [`Network::transfer_with`].
    pub fn transfer(&self, route: &[LinkId], bytes: u64, streams: u32) -> NetResult<SimDuration> {
        let mut rng = self.rng.lock();
        self.transfer_with(route, bytes, streams, &mut rng)
    }

    /// [`Network::transfer`] with the jitter drawn from a caller-supplied
    /// stream, so a caller that serializes its own requests (e.g. one
    /// storage resource behind its own lock) gets bitwise-identical costs
    /// regardless of what other resources do concurrently.
    pub fn transfer_with(
        &self,
        route: &[LinkId],
        bytes: u64,
        streams: u32,
        rng: &mut StdRng,
    ) -> NetResult<SimDuration> {
        if !self.route_up(route) {
            if self.recorder.enabled() {
                self.recorder.instant(
                    Layer::Network,
                    &self.route_name(route),
                    ops::TRANSFER_FAILED,
                    self.clock.now(),
                    "route down",
                );
            }
            return Err(NetError::RouteDown);
        }
        let mut total = SimDuration::ZERO;
        for &lid in route {
            let l = &self.links[lid.index()];
            let raw = l.transfer_cost(bytes, streams);
            total += l.spec.jitter.apply(raw, rng);
        }
        if self.recorder.enabled() && !route.is_empty() {
            self.recorder.span(
                Layer::Network,
                &self.route_name(route),
                ops::TRANSFER,
                self.clock.now(),
                total,
                bytes,
            );
        }
        Ok(total)
    }

    /// Noise-free variant of [`Network::transfer`] used by the performance
    /// predictor (the model must be deterministic).
    pub fn transfer_nominal(&self, route: &[LinkId], bytes: u64, streams: u32) -> SimDuration {
        route
            .iter()
            .map(|&lid| self.links[lid.index()].transfer_cost(bytes, streams))
            .sum()
    }

    /// Sum of one-way latencies along the route — the cost of a minimal
    /// control message (e.g. a file-seek request to a remote server).
    pub fn route_latency(&self, route: &[LinkId]) -> SimDuration {
        route
            .iter()
            .map(|&lid| self.links[lid.index()].spec.latency)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msr_sim::SimDuration;

    fn three_site_net() -> (Network, SiteId, SiteId, SiteId) {
        let mut n = Network::new(0);
        let a = n.add_site("ANL");
        let s = n.add_site("SDSC");
        let w = n.add_site("NWU");
        n.add_link(a, s, LinkSpec::ideal(SimDuration::from_millis(25.0), 1.0));
        n.add_link(a, w, LinkSpec::ideal(SimDuration::from_millis(2.0), 10.0));
        n.add_link(w, s, LinkSpec::ideal(SimDuration::from_millis(30.0), 1.0));
        (n, a, s, w)
    }

    #[test]
    fn direct_route_is_chosen() {
        let (n, a, s, _) = three_site_net();
        let r = n.route(a, s).unwrap();
        assert_eq!(r.len(), 1, "direct 25ms beats 2+30ms two-hop");
    }

    #[test]
    fn self_route_is_empty_and_free() {
        let (n, a, _, _) = three_site_net();
        let r = n.route(a, a).unwrap();
        assert!(r.is_empty());
        assert_eq!(n.transfer_nominal(&r, 1 << 20, 1), SimDuration::ZERO);
    }

    #[test]
    fn reroutes_around_down_link() {
        let (mut n, a, s, _) = three_site_net();
        let direct = n.route(a, s).unwrap()[0];
        n.set_link_up(direct, false);
        let r = n.route(a, s).unwrap();
        assert_eq!(r.len(), 2, "falls back to ANL→NWU→SDSC");
        assert!((n.route_latency(&r).as_secs() - 0.032).abs() < 1e-9);
    }

    #[test]
    fn down_site_unroutable() {
        let (mut n, a, s, w) = three_site_net();
        n.set_site_up(s, false);
        assert_eq!(n.route(a, s), Err(NetError::NoRoute { from: a, to: s }));
        // Other destinations still work.
        assert!(n.route(a, w).is_ok());
    }

    #[test]
    fn fully_partitioned_reports_no_route() {
        let (mut n, a, s, _) = three_site_net();
        for i in 0..3 {
            n.set_link_up(LinkId(i), false);
        }
        assert!(matches!(n.route(a, s), Err(NetError::NoRoute { .. })));
    }

    #[test]
    fn nominal_transfer_cost_matches_alpha_beta() {
        let (n, a, s, _) = three_site_net();
        let r = n.route(a, s).unwrap();
        // 2 MB at 1 MB/s + 25 ms latency.
        let c = n.transfer_nominal(&r, 2_000_000, 1);
        assert!((c.as_secs() - 2.025).abs() < 1e-9);
    }

    #[test]
    fn transfer_fails_when_route_goes_down() {
        let (mut n, a, s, _) = three_site_net();
        let r = n.route(a, s).unwrap();
        n.set_link_up(r[0], false);
        assert_eq!(n.transfer(&r, 1, 1), Err(NetError::RouteDown));
    }

    #[test]
    fn unknown_site_is_reported() {
        let (n, a, _, _) = three_site_net();
        let bogus = SiteId(99);
        assert_eq!(n.route(a, bogus), Err(NetError::UnknownSite(bogus)));
    }

    #[test]
    fn site_lookup_by_name() {
        let (n, a, s, _) = three_site_net();
        assert_eq!(n.site_by_name("ANL"), Some(a));
        assert_eq!(n.site_by_name("SDSC"), Some(s));
        assert_eq!(n.site_by_name("LANL"), None);
        assert_eq!(n.site_name(a), "ANL");
    }

    #[test]
    fn background_load_halves_bandwidth() {
        let (mut n, a, s, _) = three_site_net();
        let r = n.route(a, s).unwrap();
        let clean = n.transfer_nominal(&r, 1_000_000, 1);
        n.set_background_load(r[0], 1.0);
        let loaded = n.transfer_nominal(&r, 1_000_000, 1);
        assert!((loaded.as_secs() - (clean.as_secs() * 2.0 - 0.025)).abs() < 1e-9);
    }

    #[test]
    fn control_message_costs_latency_only() {
        let (n, a, s, _) = three_site_net();
        let r = n.route(a, s).unwrap();
        assert_eq!(n.transfer_nominal(&r, 0, 1).as_secs(), 0.025);
    }
}
