//! # msr-predict — the I/O performance predictor
//!
//! Section 4 of the paper: since I/O dominates these applications, the user
//! should be able to estimate I/O cost *before* running (e.g. to pick the
//! SP-2 job's maximum-run-time parameter). The mechanism has three parts:
//!
//! 1. A **performance database** ([`PerfDb`]) holding, per storage resource
//!    and operation, the fixed components of eq. (1) (`T_conn`, `T_open`,
//!    `T_seek`, `T_fileclose`, `T_connclose` — Table 1) and measured
//!    `T_read/write(s)` samples over request sizes (Figs. 6–8).
//! 2. **PTool** ([`PTool`]) — "a tool … to help users automatically
//!    generate performance data stored in databases": it sweeps request
//!    sizes against the live resources, measures every component, and fills
//!    the database (optionally mirroring it into the metadata catalog).
//! 3. The **prediction algorithm** ([`Predictor`]) — eq. (2):
//!    `T = Σ_j (N/freq(j)+1) · n(j) · t_j(s)`, generalized per strategy to
//!    the per-process parallel makespan the run-time engine actually
//!    produces, with `t_j(s)` interpolated from the database.

pub mod accuracy;
pub mod feeder;
pub mod model;
pub mod perfdb;
pub mod predictor;
pub mod ptool;
pub mod ratio;
pub mod readahead;
pub mod slo;

pub use accuracy::{compare, ComparisonRow};
pub use feeder::{observed_resources, FeedSummary, PerfDbFeeder};
pub use model::{dump_time, dump_time_with, AccessSummary};
pub use perfdb::{PerfDb, ResourceProfile};
pub use predictor::{
    queue_adjusted, DatasetPlan, PlacementScore, PredictionReport, PredictionRow, Predictor,
    RunSpec,
};
pub use ptool::PTool;
pub use ratio::RatioBook;
pub use readahead::{fetch_estimate, profile_for};
pub use slo::queue_wait;

/// Convenience result alias.
pub type PredictResult<T> = Result<T, PredictError>;

/// Failures surfaced by the predictor.
#[derive(Debug)]
pub enum PredictError {
    /// The performance database has no profile for a resource/op pair.
    NoProfile {
        /// Resource name.
        resource: String,
        /// Operation.
        op: msr_storage::OpKind,
    },
    /// PTool could not exercise the resource.
    Storage(msr_storage::StorageError),
    /// Persistence failed.
    Serde(serde_json::Error),
    /// Persistence I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::NoProfile { resource, op } => {
                write!(f, "no performance profile for {resource}/{op}")
            }
            PredictError::Storage(e) => write!(f, "PTool storage failure: {e}"),
            PredictError::Serde(e) => write!(f, "performance DB serialization: {e}"),
            PredictError::Io(e) => write!(f, "performance DB I/O: {e}"),
        }
    }
}

impl std::error::Error for PredictError {}

impl From<msr_storage::StorageError> for PredictError {
    fn from(e: msr_storage::StorageError) -> Self {
        PredictError::Storage(e)
    }
}

impl From<serde_json::Error> for PredictError {
    fn from(e: serde_json::Error) -> Self {
        PredictError::Serde(e)
    }
}

impl From<std::io::Error> for PredictError {
    fn from(e: std::io::Error) -> Self {
        PredictError::Io(e)
    }
}
