//! Prediction-accuracy bookkeeping: paper-vs-measured tables.
//!
//! §5: "We also show the predicted I/O time for each performance number in
//! figures 9 and 10. Our prediction is quite close to the actual I/O
//! time." This module turns (predicted, actual) pairs into relative-error
//! rows and a MAPE summary used by EXPERIMENTS.md.

use msr_sim::{stats::mape, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One predicted-vs-actual comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Label (dataset name, experiment id, …).
    pub name: String,
    /// Predicted time.
    pub predicted: SimDuration,
    /// Measured ("actual") time.
    pub actual: SimDuration,
}

impl ComparisonRow {
    /// Signed relative error `(predicted − actual) / actual`; `None` when
    /// the actual is zero.
    pub fn rel_error(&self) -> Option<f64> {
        let a = self.actual.as_secs();
        (a > 0.0).then(|| (self.predicted.as_secs() - a) / a)
    }
}

/// A set of comparisons with summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// The rows.
    pub rows: Vec<ComparisonRow>,
}

/// Build a comparison from `(name, predicted, actual)` triples.
pub fn compare(
    triples: impl IntoIterator<Item = (String, SimDuration, SimDuration)>,
) -> Comparison {
    Comparison {
        rows: triples
            .into_iter()
            .map(|(name, predicted, actual)| ComparisonRow {
                name,
                predicted,
                actual,
            })
            .collect(),
    }
}

impl Comparison {
    /// Mean absolute percentage error across rows.
    pub fn mape(&self) -> Option<f64> {
        let pairs: Vec<(SimDuration, SimDuration)> =
            self.rows.iter().map(|r| (r.predicted, r.actual)).collect();
        mape(&pairs)
    }

    /// Worst absolute relative error.
    pub fn worst_abs_error(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.rel_error())
            .map(f64::abs)
            .max_by(f64::total_cmp)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>14} {:>14} {:>9}",
            "EXPERIMENT", "PREDICTED(s)", "ACTUAL(s)", "ERR(%)"
        )?;
        for r in &self.rows {
            let err = r
                .rel_error()
                .map(|e| format!("{:+.1}", e * 100.0))
                .unwrap_or_else(|| "-".to_owned());
            writeln!(
                f,
                "{:<28} {:>14.2} {:>14.2} {:>9}",
                r.name,
                r.predicted.as_secs(),
                r.actual.as_secs(),
                err
            )?;
        }
        if let Some(m) = self.mape() {
            writeln!(f, "MAPE: {:.1}%", m * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn rel_error_signs() {
        let over = ComparisonRow {
            name: "x".into(),
            predicted: d(110.0),
            actual: d(100.0),
        };
        assert!((over.rel_error().unwrap() - 0.1).abs() < 1e-12);
        let under = ComparisonRow {
            name: "y".into(),
            predicted: d(90.0),
            actual: d(100.0),
        };
        assert!((under.rel_error().unwrap() + 0.1).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example_error_band() {
        // Paper: predicted 180.57 vs actual 197.40 → −8.5 %.
        let row = ComparisonRow {
            name: "example-4.2".into(),
            predicted: d(180.57),
            actual: d(197.40),
        };
        let e = row.rel_error().unwrap();
        assert!((-0.09..-0.08).contains(&e));
    }

    #[test]
    fn mape_and_worst() {
        let c = compare(vec![
            ("a".to_owned(), d(110.0), d(100.0)),
            ("b".to_owned(), d(80.0), d(100.0)),
        ]);
        assert!((c.mape().unwrap() - 0.15).abs() < 1e-12);
        assert!((c.worst_abs_error().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_actual_is_skipped() {
        let c = compare(vec![("z".to_owned(), d(1.0), SimDuration::ZERO)]);
        assert!(c.mape().is_none());
        assert!(c.rows[0].rel_error().is_none());
        assert!(c.to_string().contains('-'));
    }

    #[test]
    fn display_renders_table() {
        let c = compare(vec![("fig9-1".to_owned(), d(100.0), d(105.0))]);
        let s = c.to_string();
        assert!(s.contains("PREDICTED"));
        assert!(s.contains("fig9-1"));
        assert!(s.contains("MAPE"));
    }
}
