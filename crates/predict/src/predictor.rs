//! The eq. (2) prediction algorithm over whole runs.

use crate::model::{dump_time, AccessSummary};
use crate::perfdb::PerfDb;
use crate::PredictResult;
use msr_runtime::IoStrategy;
use msr_sim::SimDuration;
use msr_storage::OpKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One dataset's access plan within a run — the predictor's row input
/// (compare Fig. 11's table columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetPlan {
    /// Dataset name.
    pub name: String,
    /// Performance-database resource name (e.g. `"sdsc-hpss"`), or `None`
    /// when the dump is DISABLEd.
    pub resource: Option<String>,
    /// Operation direction.
    pub op: OpKind,
    /// Dump frequency in iterations.
    pub frequency: u32,
    /// I/O optimization in use.
    pub strategy: IoStrategy,
    /// Distribution facts.
    pub access: AccessSummary,
}

/// A whole run to predict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Total iterations `N`.
    pub iterations: u32,
    /// The datasets.
    pub datasets: Vec<DatasetPlan>,
}

/// Per-dataset prediction (one Fig. 11 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionRow {
    /// Dataset name.
    pub name: String,
    /// Resource used, or `None` if disabled.
    pub resource: Option<String>,
    /// Number of dumps `N/freq + 1`.
    pub dumps: u32,
    /// Native calls per dump `n(j)`.
    pub native_calls: u64,
    /// Predicted time of one dump.
    pub per_dump: SimDuration,
    /// Predicted total over the run (the VIRTUALTIME column).
    pub total: SimDuration,
}

/// A complete prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Per-dataset rows.
    pub rows: Vec<PredictionRow>,
    /// Total predicted I/O time for the run.
    pub total: SimDuration,
}

impl fmt::Display for PredictionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:<12} {:>6} {:>8} {:>12} {:>14}",
            "NAME", "LOCATION", "DUMPS", "CALLS", "PER-DUMP(s)", "VIRTUALTIME(s)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:<12} {:>6} {:>8} {:>12.4} {:>14.4}",
                r.name,
                r.resource.as_deref().unwrap_or("DISABLE"),
                r.dumps,
                r.native_calls,
                r.per_dump.as_secs(),
                r.total.as_secs()
            )?;
        }
        writeln!(
            f,
            "{:<14} {:<12} {:>6} {:>8} {:>12} {:>14.4}",
            "TOTAL",
            "",
            "",
            "",
            "",
            self.total.as_secs()
        )
    }
}

/// The prediction algorithm.
///
/// ```
/// use msr_predict::{AccessSummary, DatasetPlan, Predictor, PerfDb, ResourceProfile, RunSpec};
/// use msr_runtime::{Dims3, Distribution, IoStrategy, Pattern, ProcGrid};
/// use msr_storage::{FixedCosts, OpKind, StorageKind};
///
/// let mut db = PerfDb::new();
/// db.insert("disk", OpKind::Write, ResourceProfile {
///     kind: StorageKind::RemoteDisk,
///     fixed: FixedCosts::default(),
///     samples: vec![(1_000_000, 1.0), (8_000_000, 8.0)],
/// });
/// let dist = Distribution::new(Dims3::cube(128), 1, Pattern::bbb(), ProcGrid::new(1, 1, 1))
///     .unwrap();
/// let spec = RunSpec {
///     iterations: 120,
///     datasets: vec![DatasetPlan {
///         name: "vr_temp".into(),
///         resource: Some("disk".into()),
///         op: OpKind::Write,
///         frequency: 6,
///         strategy: IoStrategy::Collective,
///         access: AccessSummary::of(&dist),
///     }],
/// };
/// let report = Predictor::new(db).predict(&spec).unwrap();
/// assert_eq!(report.rows[0].dumps, 21); // N/freq + 1, the paper's eq. (2)
/// ```
#[derive(Debug, Clone, Default)]
pub struct Predictor {
    /// The performance database consulted for `t_j(s)`.
    pub db: PerfDb,
}

/// A placement score for one candidate resource: the eq. (2) predicted
/// time of a single dump, optionally inflated by queue pressure (see
/// [`Predictor::score`] and [`queue_adjusted`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementScore {
    /// Predicted time of one dump with an idle resource (eq. (2) inner
    /// term: `n(j) · t_j(s)` composed per strategy).
    pub per_dump: SimDuration,
    /// The same, inflated by the queue depth the caller observed.
    pub adjusted: SimDuration,
}

/// Inflate a per-dump prediction by live queue pressure: `depth` requests
/// already queued ahead each cost roughly one service time, so the
/// expected completion of a new arrival is `(depth + 1) · per_dump`.
pub fn queue_adjusted(per_dump: SimDuration, depth: usize) -> SimDuration {
    per_dump * (depth as f64 + 1.0)
}

impl Predictor {
    /// A predictor over a database.
    pub fn new(db: PerfDb) -> Self {
        Predictor { db }
    }

    /// The placement entry point: score one candidate resource for one
    /// dump of an access shape. This is eq. (2)'s inner term — exactly
    /// what [`Predictor::predict_dataset`] charges per dump — exposed so
    /// schedulers and placement policies can rank resources without
    /// constructing a whole [`RunSpec`]. `queue_depth` is the number of
    /// requests already waiting on the resource; the returned
    /// [`PlacementScore::adjusted`] folds that contention in while
    /// [`PlacementScore::per_dump`] stays the idle-resource prediction.
    ///
    /// Errors with `PredictError::NoProfile` when the database has never
    /// been populated for this resource/op pair — callers degrade to
    /// their static preference order on that signal.
    pub fn score(
        &self,
        resource: &str,
        op: OpKind,
        strategy: IoStrategy,
        access: &AccessSummary,
        queue_depth: usize,
    ) -> PredictResult<PlacementScore> {
        let per_dump = dump_time(&self.db, resource, op, strategy, access)?;
        Ok(PlacementScore {
            per_dump,
            adjusted: queue_adjusted(per_dump, queue_depth),
        })
    }

    /// Predict one dataset's total I/O time for a run of `iterations`.
    pub fn predict_dataset(
        &self,
        iterations: u32,
        plan: &DatasetPlan,
    ) -> PredictResult<PredictionRow> {
        let dumps = match iterations.checked_div(plan.frequency) {
            None => 0,
            Some(d) => d + 1,
        };
        let (per_dump, native_calls) = match (&plan.resource, dumps) {
            (Some(resource), d) if d > 0 => (
                dump_time(&self.db, resource, plan.op, plan.strategy, &plan.access)?,
                plan.access.native_calls(plan.strategy),
            ),
            _ => (SimDuration::ZERO, 0),
        };
        Ok(PredictionRow {
            name: plan.name.clone(),
            resource: plan.resource.clone(),
            dumps,
            native_calls,
            per_dump,
            total: per_dump * f64::from(dumps),
        })
    }

    /// Predict the whole run: eq. (2)'s outer sum.
    pub fn predict(&self, spec: &RunSpec) -> PredictResult<PredictionReport> {
        let mut rows = Vec::with_capacity(spec.datasets.len());
        let mut total = SimDuration::ZERO;
        for plan in &spec.datasets {
            let row = self.predict_dataset(spec.iterations, plan)?;
            total += row.total;
            rows.push(row);
        }
        Ok(PredictionReport { rows, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfdb::ResourceProfile;
    use msr_runtime::{Dims3, Distribution, Pattern, ProcGrid};
    use msr_storage::{FixedCosts, StorageKind};

    /// Database calibrated to the §4.2 worked example: a 2 MB collective
    /// write costs ≈ 0.25 s locally, ≈ 8.47 s on remote disks.
    fn example_db() -> PerfDb {
        let mut db = PerfDb::new();
        db.insert(
            "anl-local",
            OpKind::Write,
            ResourceProfile {
                kind: StorageKind::LocalDisk,
                fixed: FixedCosts {
                    open: SimDuration::from_secs(0.21),
                    close: SimDuration::from_secs(0.001),
                    ..Default::default()
                },
                samples: vec![(1 << 20, 0.0195), (1 << 21, 0.039), (1 << 24, 0.312)],
            },
        );
        db.insert(
            "sdsc-disk",
            OpKind::Write,
            ResourceProfile {
                kind: StorageKind::RemoteDisk,
                fixed: FixedCosts {
                    conn: SimDuration::from_secs(0.44),
                    open: SimDuration::from_secs(0.42),
                    seek: SimDuration::ZERO,
                    close: SimDuration::from_secs(0.83),
                    connclose: SimDuration::from_secs(0.0002),
                },
                samples: vec![(1 << 20, 3.39), (1 << 21, 6.78), (1 << 24, 54.2)],
            },
        );
        db
    }

    fn vr_plan(name: &str, resource: Option<&str>) -> DatasetPlan {
        // 128^3 u8 = 2 MiB, single-process collective, freq 6.
        let dist =
            Distribution::new(Dims3::cube(128), 1, Pattern::bbb(), ProcGrid::new(1, 1, 1)).unwrap();
        DatasetPlan {
            name: name.into(),
            resource: resource.map(str::to_owned),
            op: OpKind::Write,
            frequency: 6,
            strategy: IoStrategy::Collective,
            access: AccessSummary::of(&dist),
        }
    }

    #[test]
    fn reproduces_the_section_4_2_worked_example() {
        // vr_temp → local disks, vr_press → remote disks, N = 120, freq 6.
        // Paper: (120/6+1)·0.25 + (120/6+1)·8.47 = 2.59 + 177.98 ≈ 180.57.
        // (The paper's 2.59 implies a 0.123 s local per-dump; its "0.25"
        // is an inline typo. We calibrate near their arithmetic.)
        let spec = RunSpec {
            iterations: 120,
            datasets: vec![
                vr_plan("vr_temp", Some("anl-local")),
                vr_plan("vr_press", Some("sdsc-disk")),
            ],
        };
        let rep = Predictor::new(example_db()).predict(&spec).unwrap();
        assert_eq!(rep.rows[0].dumps, 21);
        let remote_total = rep.rows[1].total.as_secs();
        assert!((170.0..190.0).contains(&remote_total), "got {remote_total}");
        let grand = rep.total.as_secs();
        assert!((172.0..196.0).contains(&grand), "got {grand}");
    }

    #[test]
    fn disabled_dataset_costs_nothing() {
        let spec = RunSpec {
            iterations: 120,
            datasets: vec![vr_plan("vr_rho", None)],
        };
        let rep = Predictor::new(example_db()).predict(&spec).unwrap();
        assert_eq!(rep.rows[0].total, SimDuration::ZERO);
        assert_eq!(rep.rows[0].native_calls, 0);
        assert_eq!(rep.total, SimDuration::ZERO);
    }

    #[test]
    fn zero_frequency_means_never_dumped() {
        let mut plan = vr_plan("vr_ek", Some("sdsc-disk"));
        plan.frequency = 0;
        let rep = Predictor::new(example_db())
            .predict(&RunSpec {
                iterations: 120,
                datasets: vec![plan],
            })
            .unwrap();
        assert_eq!(rep.rows[0].dumps, 0);
        assert_eq!(rep.rows[0].total, SimDuration::ZERO);
    }

    #[test]
    fn report_renders_a_fig11_style_table() {
        let spec = RunSpec {
            iterations: 120,
            datasets: vec![
                vr_plan("vr_temp", Some("anl-local")),
                vr_plan("vr_rho", None),
            ],
        };
        let rep = Predictor::new(example_db()).predict(&spec).unwrap();
        let s = rep.to_string();
        assert!(s.contains("VIRTUALTIME"));
        assert!(s.contains("vr_temp"));
        assert!(s.contains("DISABLE"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn score_matches_the_per_dump_prediction() {
        let db = example_db();
        let plan = vr_plan("vr_temp", Some("anl-local"));
        let p = Predictor::new(db);
        let row = p.predict_dataset(120, &plan).unwrap();
        let score = p
            .score("anl-local", OpKind::Write, plan.strategy, &plan.access, 0)
            .unwrap();
        assert_eq!(score.per_dump, row.per_dump);
        assert_eq!(score.adjusted, row.per_dump, "idle queue adds nothing");
    }

    #[test]
    fn score_inflates_linearly_with_queue_depth() {
        let p = Predictor::new(example_db());
        let plan = vr_plan("vr_temp", Some("sdsc-disk"));
        let idle = p
            .score("sdsc-disk", OpKind::Write, plan.strategy, &plan.access, 0)
            .unwrap();
        let busy = p
            .score("sdsc-disk", OpKind::Write, plan.strategy, &plan.access, 3)
            .unwrap();
        assert_eq!(busy.per_dump, idle.per_dump);
        assert_eq!(busy.adjusted, queue_adjusted(idle.per_dump, 3));
        assert!(busy.adjusted > idle.adjusted);
    }

    #[test]
    fn score_without_a_profile_is_no_profile() {
        let p = Predictor::new(example_db());
        let plan = vr_plan("x", None);
        assert!(matches!(
            p.score("ghost", OpKind::Write, plan.strategy, &plan.access, 0),
            Err(crate::PredictError::NoProfile { .. })
        ));
    }

    #[test]
    fn missing_resource_profile_bubbles_up() {
        let spec = RunSpec {
            iterations: 12,
            datasets: vec![vr_plan("x", Some("ghost-resource"))],
        };
        assert!(Predictor::new(example_db()).predict(&spec).is_err());
    }
}
