//! PTool — automatic generation of the performance database.
//!
//! §4.1: "To efficiently obtain these numbers, we built a tool called PTool
//! that can automatically generate all these numbers … so the user can
//! easily set up her basic performance prediction database in a single
//! run." PTool exercises each live resource with a size sweep, measures
//! every eq. (1) component (with one warm-up discarded and the median of
//! the repetitions kept, since measurements are jittered exactly like the
//! paper's), and fills a [`PerfDb`].

use crate::perfdb::{PerfDb, ResourceProfile};
use crate::PredictResult;
use msr_sim::SimDuration;
use msr_storage::{FixedCosts, OpKind, OpenMode, SharedResource};

/// The measurement sweep configuration.
#[derive(Debug, Clone)]
pub struct PTool {
    /// Request sizes to measure (the x-axis of Figs. 6–8).
    pub sizes: Vec<u64>,
    /// Repetitions per point (median kept, after one discarded warm-up).
    pub reps: usize,
    /// Scratch path prefix on each resource.
    pub scratch_prefix: String,
}

impl Default for PTool {
    fn default() -> Self {
        PTool {
            // 4 KB … 16 MB in powers of two: the small sizes capture the
            // per-request latency floor of remote media.
            sizes: (12..=24).map(|e| 1u64 << e).collect(),
            reps: 3,
            scratch_prefix: "ptool/scratch".to_owned(),
        }
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

impl PTool {
    /// Measure one resource and produce its read and write profiles.
    pub fn profile_resource(
        &self,
        res: &SharedResource,
    ) -> PredictResult<(ResourceProfile, ResourceProfile)> {
        let mut r = res.lock();
        let kind = r.kind();
        let reps = self.reps.max(1);

        // --- connection costs (disconnect/connect cycles, skip warm-up) ---
        let mut conns = Vec::with_capacity(reps);
        let mut connclose = Vec::with_capacity(reps);
        r.connect()?; // warm-up
        for _ in 0..reps {
            connclose.push(r.disconnect()?.time.as_secs());
            conns.push(r.connect()?.time.as_secs());
        }
        let t_conn = SimDuration::from_secs(median(conns));
        let t_connclose = SimDuration::from_secs(median(connclose));

        // --- open/close/seek constants per op ---
        let scratch = format!("{}.fixed", self.scratch_prefix);
        let mut open_w = Vec::new();
        let mut close_w = Vec::new();
        let mut open_r = Vec::new();
        let mut close_r = Vec::new();
        let mut seeks = Vec::new();
        {
            // Warm-up create (absorbs the tape mount).
            let h = r.open(&scratch, OpenMode::Create)?.value;
            r.write(h, &[0u8; 4096])?;
            r.close(h)?;
        }
        for _ in 0..reps {
            let o = r.open(&scratch, OpenMode::OverWrite)?;
            open_w.push(o.time.as_secs());
            seeks.push(r.seek(o.value, 0)?.time.as_secs());
            close_w.push(r.close(o.value)?.time.as_secs());
            let o = r.open(&scratch, OpenMode::Read)?;
            open_r.push(o.time.as_secs());
            close_r.push(r.close(o.value)?.time.as_secs());
        }
        let fixed_for = |open: &[f64], close: &[f64]| FixedCosts {
            conn: t_conn,
            open: SimDuration::from_secs(median(open.to_vec())),
            seek: SimDuration::from_secs(median(seeks.clone())),
            close: SimDuration::from_secs(median(close.to_vec())),
            connclose: t_connclose,
        };
        let fixed_write = fixed_for(&open_w, &close_w);
        let fixed_read = fixed_for(&open_r, &close_r);

        // --- transfer curves ---
        let mut write_samples = Vec::with_capacity(self.sizes.len());
        let mut read_samples = Vec::with_capacity(self.sizes.len());
        for &size in &self.sizes {
            let path = format!("{}.{}", self.scratch_prefix, size);
            let payload = vec![0xA5u8; size as usize];
            // Write sweep: sequential appends keep tape streaming, matching
            // how datasets are dumped.
            let h = r.open(&path, OpenMode::Create)?.value;
            r.write(h, &payload)?; // warm-up (mount, first-touch)
            let mut ws = Vec::with_capacity(reps);
            for _ in 0..reps {
                ws.push(r.write(h, &payload)?.time.as_secs());
            }
            r.close(h)?;
            write_samples.push((size, median(ws)));
            // Read sweep over the bytes just written.
            let h = r.open(&path, OpenMode::Read)?.value;
            let mut rs = Vec::with_capacity(reps);
            let _ = r.read(h, size as usize)?; // warm-up
            for _ in 0..reps {
                rs.push(r.read(h, size as usize)?.time.as_secs());
            }
            r.close(h)?;
            read_samples.push((size, median(rs)));
            r.delete(&path)?;
        }
        r.delete(&scratch)?;

        Ok((
            ResourceProfile {
                kind,
                fixed: fixed_read,
                samples: read_samples,
            },
            ResourceProfile {
                kind,
                fixed: fixed_write,
                samples: write_samples,
            },
        ))
    }

    /// Profile every resource into `db` — "set up her basic performance
    /// prediction database in a single run".
    pub fn populate(&self, db: &mut PerfDb, resources: &[SharedResource]) -> PredictResult<()> {
        for res in resources {
            let name = res.lock().name().to_owned();
            let (read, write) = self.profile_resource(res)?;
            db.insert(&name, OpKind::Read, read);
            db.insert(&name, OpKind::Write, write);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msr_storage::{share, testbed};

    fn small_ptool() -> PTool {
        PTool {
            sizes: vec![1 << 16, 1 << 18, 1 << 20],
            reps: 3,
            scratch_prefix: "ptool/t".into(),
        }
    }

    #[test]
    fn profiles_local_disk_close_to_model() {
        let tb = testbed(7);
        let res = share(tb.local);
        let (read, write) = small_ptool().profile_resource(&res).unwrap();
        // Fixed costs should be near Table 1's local rows.
        assert!((write.fixed.open.as_secs() - 0.21).abs() < 0.03);
        assert!((read.fixed.open.as_secs() - 0.20).abs() < 0.03);
        assert_eq!(write.fixed.conn, SimDuration::ZERO);
        // 1 MB at ~17 MB/s ≈ 0.06 s.
        let t = write.transfer_time(1 << 20).as_secs();
        assert!((0.04..0.09).contains(&t), "got {t}");
    }

    #[test]
    fn profiles_remote_disk_conn_cost() {
        let tb = testbed(7);
        let res = share(tb.remote_disk);
        let (_, write) = small_ptool().profile_resource(&res).unwrap();
        // Table 1: conn 0.44 s (jittered measurement, generous tolerance).
        assert!((write.fixed.conn.as_secs() - 0.44).abs() < 0.15);
        assert!((write.fixed.open.as_secs() - 0.42).abs() < 0.1);
    }

    #[test]
    fn populate_fills_all_resources() {
        let tb = testbed(7);
        let resources = vec![share(tb.local), share(tb.remote_disk)];
        let mut db = PerfDb::new();
        small_ptool().populate(&mut db, &resources).unwrap();
        assert_eq!(db.len(), 4);
        assert!(db.contains("anl-local", OpKind::Read));
        assert!(db.contains("sdsc-disk", OpKind::Write));
    }

    #[test]
    fn scratch_files_are_cleaned_up() {
        let tb = testbed(7);
        let res = share(tb.local);
        small_ptool().profile_resource(&res).unwrap();
        assert!(res.lock().list("ptool/").is_empty());
    }

    #[test]
    fn tape_profile_orders_above_disk() {
        let tb = testbed(7);
        let tape = share(tb.tape);
        let disk = share(tb.remote_disk);
        let pt = small_ptool();
        let (_, tape_w) = pt.profile_resource(&tape).unwrap();
        let (_, disk_w) = pt.profile_resource(&disk).unwrap();
        assert!(tape_w.transfer_time(1 << 20) > disk_w.transfer_time(1 << 20));
        assert!(tape_w.fixed.open > disk_w.fixed.open);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![5.0]), 5.0);
        assert_eq!(median(vec![1.0, 2.0]), 2.0);
    }
}
