//! Online performance-database maintenance: the paper's PTool "runs in the
//! background and collects performance numbers automatically". The
//! [`PerfDbFeeder`] is that background loop's core — it consumes the
//! structured event stream collected by `msr-obs` and folds every observed
//! storage-layer native call back into the [`PerfDb`], so predictions track
//! current conditions (WAN load, server slowdowns) instead of the numbers
//! measured at calibration time.
//!
//! Update rules:
//!
//! * fixed eq. (1) components (`conn`, `open`, `seek`, `close`,
//!   `connclose`) are smoothed with an exponential moving average and
//!   applied to **both** the read and write profiles of the resource — the
//!   paper's Table 1 does not distinguish direction for these either;
//! * `read`/`write` spans update the `(bytes, seconds)` transfer curve of
//!   the matching profile: an anchor at the exact size is EWMA-blended,
//!   otherwise a new anchor is inserted in sorted order (the curve is kept
//!   to a bounded number of anchors by merging the closest pair).
//!
//! Observed transfer times are per-call wall(-sim) durations. Contended
//! strategies (Naive with many streams) observe the shared-link slowdown;
//! feeding those samples bakes the contention of that run into the curve.
//! That is exactly the desired behaviour for "re-predict under current
//! conditions", but callers comparing against single-stream calibration
//! should prefer collective-strategy runs as the feedback source.

use crate::perfdb::PerfDb;
use msr_obs::{ops, Event};
use msr_sim::SimDuration;
use msr_storage::OpKind;
use std::collections::BTreeSet;

/// Counters describing what one [`PerfDbFeeder::ingest`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedSummary {
    /// Storage-layer spans consumed.
    pub spans: u64,
    /// Fixed-cost component updates applied (per profile touched).
    pub fixed_updates: u64,
    /// Transfer-curve anchor updates or insertions.
    pub transfer_updates: u64,
    /// Events skipped because no profile exists for their resource.
    pub unmatched: u64,
}

impl FeedSummary {
    /// Whether the pass changed the database at all.
    pub fn changed(&self) -> bool {
        self.fixed_updates + self.transfer_updates > 0
    }
}

/// Incremental [`PerfDb`] updater over observed events.
#[derive(Debug, Clone, Copy)]
pub struct PerfDbFeeder {
    /// EWMA smoothing factor in `(0, 1]`: the weight of the newest
    /// observation. `1.0` adopts each observation outright.
    pub alpha: f64,
    /// Upper bound on transfer-curve anchors per profile; the closest pair
    /// (by size ratio) is merged when exceeded.
    pub max_anchors: usize,
}

impl Default for PerfDbFeeder {
    fn default() -> Self {
        PerfDbFeeder {
            alpha: 0.3,
            max_anchors: 64,
        }
    }
}

impl PerfDbFeeder {
    /// A feeder with the default smoothing (`alpha = 0.3`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold every storage-layer span in `events` into `db`. Events for
    /// resources the database has no profile for are counted but ignored —
    /// the feeder refines calibrated tables, it does not invent them.
    pub fn ingest(&self, db: &mut PerfDb, events: &[Event]) -> FeedSummary {
        let mut summary = FeedSummary::default();
        for ev in events {
            if !ev.is_native_call() {
                continue;
            }
            summary.spans += 1;
            let resource = ev.resource.as_str();
            let observed = ev.dur;
            match ev.op.as_str() {
                ops::READ => {
                    if self.feed_transfer(db, resource, OpKind::Read, ev.bytes, observed) {
                        summary.transfer_updates += 1;
                    } else {
                        summary.unmatched += 1;
                    }
                }
                ops::WRITE => {
                    if self.feed_transfer(db, resource, OpKind::Write, ev.bytes, observed) {
                        summary.transfer_updates += 1;
                    } else {
                        summary.unmatched += 1;
                    }
                }
                op @ (ops::CONN | ops::OPEN | ops::SEEK | ops::CLOSE | ops::CONNCLOSE) => {
                    let mut touched = false;
                    // Fixed components are direction-independent: update
                    // whichever of the two profiles exist.
                    for kind in [OpKind::Read, OpKind::Write] {
                        if let Some(profile) = db.get_mut(resource, kind) {
                            let slot = match op {
                                ops::CONN => &mut profile.fixed.conn,
                                ops::OPEN => &mut profile.fixed.open,
                                ops::SEEK => &mut profile.fixed.seek,
                                ops::CLOSE => &mut profile.fixed.close,
                                _ => &mut profile.fixed.connclose,
                            };
                            *slot = self.blend(*slot, observed);
                            summary.fixed_updates += 1;
                            touched = true;
                        }
                    }
                    if !touched {
                        summary.unmatched += 1;
                    }
                }
                _ => {}
            }
        }
        summary
    }

    /// EWMA of a duration toward an observation.
    fn blend(&self, current: SimDuration, observed: SimDuration) -> SimDuration {
        SimDuration::from_secs(
            self.alpha * observed.as_secs() + (1.0 - self.alpha) * current.as_secs(),
        )
    }

    /// Update one `(bytes, secs)` anchor; `false` if no profile exists.
    fn feed_transfer(
        &self,
        db: &mut PerfDb,
        resource: &str,
        op: OpKind,
        bytes: u64,
        observed: SimDuration,
    ) -> bool {
        if bytes == 0 {
            return true; // nothing to learn from an empty transfer
        }
        let Some(profile) = db.get_mut(resource, op) else {
            return false;
        };
        let samples = &mut profile.samples;
        match samples.binary_search_by_key(&bytes, |&(b, _)| b) {
            Ok(i) => {
                samples[i].1 = self.alpha * observed.as_secs() + (1.0 - self.alpha) * samples[i].1;
            }
            Err(i) => {
                samples.insert(i, (bytes, observed.as_secs()));
                if samples.len() > self.max_anchors {
                    merge_closest_pair(samples);
                }
            }
        }
        true
    }
}

/// Merge the adjacent anchor pair with the smallest size ratio into one
/// averaged anchor, keeping the curve bounded without losing its extremes.
fn merge_closest_pair(samples: &mut Vec<(u64, f64)>) {
    if samples.len() < 2 {
        return;
    }
    let mut best = 0;
    let mut best_ratio = f64::INFINITY;
    for i in 0..samples.len() - 1 {
        let ratio = samples[i + 1].0 as f64 / samples[i].0.max(1) as f64;
        if ratio < best_ratio {
            best_ratio = ratio;
            best = i;
        }
    }
    let (a, b) = (samples[best], samples[best + 1]);
    samples[best] = ((a.0 + b.0) / 2, (a.1 + b.1) / 2.0);
    samples.remove(best + 1);
}

/// Resource names seen in storage-layer spans of an event slice — handy for
/// reporting which profiles a feed pass can affect.
pub fn observed_resources(events: &[Event]) -> Vec<String> {
    let set: BTreeSet<String> = events
        .iter()
        .filter(|e| e.is_native_call())
        .map(|e| e.resource.clone())
        .collect();
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfdb::ResourceProfile;
    use msr_obs::{Layer, Registry};
    use msr_sim::SimTime;
    use msr_storage::{FixedCosts, StorageKind};

    fn db_with(resource: &str) -> PerfDb {
        let mut db = PerfDb::new();
        for op in [OpKind::Read, OpKind::Write] {
            db.insert(
                resource,
                op,
                ResourceProfile {
                    kind: StorageKind::RemoteDisk,
                    fixed: FixedCosts {
                        conn: SimDuration::from_secs(0.4),
                        open: SimDuration::from_secs(0.4),
                        seek: SimDuration::from_secs(0.1),
                        close: SimDuration::from_secs(0.8),
                        connclose: SimDuration::from_secs(0.001),
                    },
                    samples: vec![(1 << 20, 1.0), (1 << 24, 16.0)],
                },
            );
        }
        db
    }

    fn span(resource: &str, op: &str, secs: f64, bytes: u64) -> Event {
        let reg = Registry::new();
        let rec = reg.recorder();
        rec.span(
            Layer::Storage,
            resource,
            op,
            SimTime::from_secs(0.0),
            SimDuration::from_secs(secs),
            bytes,
        );
        reg.events().pop().unwrap()
    }

    #[test]
    fn fixed_costs_move_toward_observations() {
        let mut db = db_with("sdsc-disk");
        let feeder = PerfDbFeeder {
            alpha: 0.5,
            ..Default::default()
        };
        let s = feeder.ingest(&mut db, &[span("sdsc-disk", ops::CONN, 1.2, 0)]);
        assert_eq!(s.fixed_updates, 2, "both read and write profiles");
        for op in [OpKind::Read, OpKind::Write] {
            let c = db.get("sdsc-disk", op).unwrap().fixed.conn.as_secs();
            assert!((c - 0.8).abs() < 1e-9, "0.5*1.2 + 0.5*0.4, got {c}");
        }
    }

    #[test]
    fn exact_size_sample_is_blended_new_size_is_inserted() {
        let mut db = db_with("sdsc-disk");
        let feeder = PerfDbFeeder {
            alpha: 1.0,
            ..Default::default()
        };
        // Exact match: adopt the observation outright (alpha = 1).
        feeder.ingest(&mut db, &[span("sdsc-disk", ops::WRITE, 4.0, 1 << 20)]);
        let p = db.get("sdsc-disk", OpKind::Write).unwrap();
        assert_eq!(p.samples[0], (1 << 20, 4.0));
        // New size: inserted between the anchors, sorted.
        feeder.ingest(&mut db, &[span("sdsc-disk", ops::WRITE, 8.0, 1 << 22)]);
        let p = db.get("sdsc-disk", OpKind::Write).unwrap();
        assert_eq!(p.samples.len(), 3);
        assert_eq!(p.samples[1], (1 << 22, 8.0));
        assert!(p.samples.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn read_and_write_curves_update_independently() {
        let mut db = db_with("sdsc-disk");
        let feeder = PerfDbFeeder {
            alpha: 1.0,
            ..Default::default()
        };
        feeder.ingest(&mut db, &[span("sdsc-disk", ops::READ, 9.0, 1 << 20)]);
        assert_eq!(db.get("sdsc-disk", OpKind::Read).unwrap().samples[0].1, 9.0);
        assert_eq!(
            db.get("sdsc-disk", OpKind::Write).unwrap().samples[0].1,
            1.0
        );
    }

    #[test]
    fn unknown_resources_are_counted_not_invented() {
        let mut db = db_with("sdsc-disk");
        let before = db.clone();
        let s = PerfDbFeeder::new().ingest(&mut db, &[span("ghost", ops::WRITE, 1.0, 1 << 20)]);
        assert_eq!(s.unmatched, 1);
        assert!(!s.changed());
        assert_eq!(db, before);
    }

    #[test]
    fn non_storage_events_are_ignored() {
        let mut db = db_with("sdsc-disk");
        let before = db.clone();
        let reg = Registry::new();
        let rec = reg.recorder();
        rec.span(
            Layer::Runtime,
            "sdsc-disk",
            "write:naive",
            SimTime::from_secs(0.0),
            SimDuration::from_secs(99.0),
            1 << 20,
        );
        rec.instant(
            Layer::Session,
            "d",
            ops::FAILOVER,
            SimTime::from_secs(0.0),
            "x",
        );
        let s = PerfDbFeeder::new().ingest(&mut db, &reg.events());
        assert_eq!(s.spans, 0);
        assert_eq!(db, before);
    }

    #[test]
    fn anchor_count_stays_bounded() {
        let mut db = db_with("sdsc-disk");
        let feeder = PerfDbFeeder {
            alpha: 1.0,
            max_anchors: 8,
        };
        for i in 1..100u64 {
            feeder.ingest(
                &mut db,
                &[span("sdsc-disk", ops::WRITE, i as f64, i * 100_000)],
            );
        }
        let p = db.get("sdsc-disk", OpKind::Write).unwrap();
        assert!(p.samples.len() <= 8, "got {}", p.samples.len());
        assert!(p.samples.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn observed_resources_lists_storage_spans_only() {
        let evs = vec![
            span("anl-local", ops::WRITE, 1.0, 1),
            span("sdsc-disk", ops::CONN, 1.0, 0),
            span("anl-local", ops::CLOSE, 1.0, 0),
        ];
        assert_eq!(observed_resources(&evs), vec!["anl-local", "sdsc-disk"]);
    }
}
