//! The performance database.

use crate::{PredictError, PredictResult};
use msr_meta::{Catalog, PerfSample};
use msr_sim::SimDuration;
use msr_storage::{FixedCosts, OpKind, RateCurve, StorageKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Everything the predictor knows about one `(resource, op)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// The resource's kind (for display and placement policies).
    pub kind: StorageKind,
    /// Fixed eq.(1) components — one Table 1 row.
    pub fixed: FixedCosts,
    /// `(bytes, seconds)` transfer samples, sorted by size.
    pub samples: Vec<(u64, f64)>,
}

impl ResourceProfile {
    /// Interpolated `T_read/write(s)` for a request of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.samples.is_empty() || bytes == 0 {
            return SimDuration::ZERO;
        }
        RateCurve::from_anchors(self.samples.clone()).time_for(bytes)
    }

    /// The complete eq. (1) for a standalone native call of `bytes`.
    pub fn native_call_time(&self, bytes: u64) -> SimDuration {
        self.fixed.total() + self.transfer_time(bytes)
    }
}

fn key(resource: &str, op: OpKind) -> String {
    format!("{resource}/{op}")
}

/// The performance database: profiles per resource and operation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PerfDb {
    profiles: BTreeMap<String, ResourceProfile>,
}

impl PerfDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install or replace a profile.
    pub fn insert(&mut self, resource: &str, op: OpKind, profile: ResourceProfile) {
        self.profiles.insert(key(resource, op), profile);
    }

    /// Look up a profile.
    pub fn get(&self, resource: &str, op: OpKind) -> PredictResult<&ResourceProfile> {
        self.profiles
            .get(&key(resource, op))
            .ok_or_else(|| PredictError::NoProfile {
                resource: resource.to_owned(),
                op,
            })
    }

    /// Look up a profile mutably (used by the online feeder to fold
    /// observed timings back into the table).
    pub fn get_mut(&mut self, resource: &str, op: OpKind) -> Option<&mut ResourceProfile> {
        self.profiles.get_mut(&key(resource, op))
    }

    /// Whether a profile exists.
    pub fn contains(&self, resource: &str, op: OpKind) -> bool {
        self.profiles.contains_key(&key(resource, op))
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Resource names present (deduplicated, sorted).
    pub fn resources(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .profiles
            .keys()
            .filter_map(|k| k.rsplit_once('/').map(|(r, _)| r.to_owned()))
            .collect();
        names.dedup();
        names
    }

    /// Mirror this database into the metadata catalog (the paper stores its
    /// performance tables in the Postgres MDMS).
    pub fn export_to_catalog(&self, catalog: &mut Catalog) {
        for (k, p) in &self.profiles {
            let Some((resource, op)) = k.rsplit_once('/') else {
                continue;
            };
            let op = if op == "read" {
                OpKind::Read
            } else {
                OpKind::Write
            };
            catalog.record_fixed_costs(resource, op, p.fixed);
            catalog.record_perf_samples(
                resource,
                op,
                p.samples
                    .iter()
                    .map(|&(bytes, transfer_secs)| PerfSample {
                        bytes,
                        transfer_secs,
                    })
                    .collect(),
            );
        }
    }

    /// Rebuild a database from catalog tables (kinds default from the
    /// registered resources; unknown resources get `RemoteDisk`).
    pub fn import_from_catalog(catalog: &mut Catalog) -> PerfDb {
        let kinds: BTreeMap<String, StorageKind> = catalog
            .resources()
            .into_iter()
            .map(|r| (r.name, r.kind))
            .collect();
        let mut db = PerfDb::new();
        for resource in catalog.perf_resources() {
            for op in [OpKind::Read, OpKind::Write] {
                let (Some(samples), Some(fixed)) = (
                    catalog.perf_samples(&resource, op),
                    catalog.fixed_costs(&resource, op),
                ) else {
                    continue;
                };
                db.insert(
                    &resource,
                    op,
                    ResourceProfile {
                        kind: kinds
                            .get(&resource)
                            .copied()
                            .unwrap_or(StorageKind::RemoteDisk),
                        fixed,
                        samples: samples.iter().map(|s| (s.bytes, s.transfer_secs)).collect(),
                    },
                );
            }
        }
        db
    }

    /// Persist as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> PredictResult<()> {
        std::fs::write(path, serde_json::to_string_pretty(self)?)?;
        Ok(())
    }

    /// Load from JSON.
    pub fn load(path: impl AsRef<Path>) -> PredictResult<PerfDb> {
        Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ResourceProfile {
        ResourceProfile {
            kind: StorageKind::RemoteDisk,
            fixed: FixedCosts {
                conn: SimDuration::from_secs(0.44),
                open: SimDuration::from_secs(0.42),
                seek: SimDuration::from_secs(0.40),
                close: SimDuration::from_secs(0.83),
                connclose: SimDuration::from_secs(0.0002),
            },
            samples: vec![(1_000_000, 3.4), (2_000_000, 6.8), (8_000_000, 27.0)],
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = PerfDb::new();
        db.insert("sdsc-disk", OpKind::Write, profile());
        assert!(db.contains("sdsc-disk", OpKind::Write));
        assert!(!db.contains("sdsc-disk", OpKind::Read));
        assert!(matches!(
            db.get("hpss", OpKind::Write),
            Err(PredictError::NoProfile { .. })
        ));
        assert_eq!(db.resources(), vec!["sdsc-disk".to_owned()]);
    }

    #[test]
    fn native_call_time_composes_eq1() {
        let p = profile();
        let t = p.native_call_time(2_000_000);
        // 2.0902 fixed (incl. the 0.40 seek) + 6.8 transfer
        assert!((t.as_secs() - 8.8902).abs() < 1e-9);
    }

    #[test]
    fn transfer_interpolates_between_samples() {
        let p = profile();
        let t = p.transfer_time(4_000_000).as_secs();
        assert!(t > 6.8 && t < 27.0, "got {t}");
        assert_eq!(p.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn empty_profile_transfers_free() {
        let p = ResourceProfile {
            kind: StorageKind::LocalDisk,
            fixed: FixedCosts::default(),
            samples: vec![],
        };
        assert_eq!(p.transfer_time(123), SimDuration::ZERO);
    }

    #[test]
    fn catalog_roundtrip() {
        let mut db = PerfDb::new();
        db.insert("sdsc-disk", OpKind::Write, profile());
        db.insert("sdsc-disk", OpKind::Read, profile());
        let mut cat = Catalog::new();
        cat.register_resource(msr_meta::ResourceRec {
            name: "sdsc-disk".into(),
            kind: StorageKind::RemoteDisk,
            site: "SDSC".into(),
            capacity: 1 << 40,
        });
        db.export_to_catalog(&mut cat);
        let back = PerfDb::import_from_catalog(&mut cat);
        assert_eq!(back, db);
    }

    #[test]
    fn json_roundtrip() {
        let mut db = PerfDb::new();
        db.insert("anl-local", OpKind::Read, profile());
        let s = serde_json::to_string(&db).unwrap();
        let back: PerfDb = serde_json::from_str(&s).unwrap();
        assert_eq!(back, db);
    }
}
