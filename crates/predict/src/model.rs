//! The per-dump cost model: eq. (1) composed per strategy.
//!
//! The paper's eq. (1) prices one native call; a dump of a distributed
//! dataset issues a strategy-dependent *pattern* of native calls. The
//! predictor interprets "the number of 'native' I/O calls needed for the
//! request and the data size of each 'native' I/O unit" (§4.2) per
//! strategy, and returns the parallel makespan a run-time engine of P
//! processes produces. Following the paper's worked example, the fixed
//! connection cost is charged on every dump (their `t(s)` includes
//! `T_conn`), which slightly over-estimates engines that hold a session
//! connection open — a deliberate fidelity to the published algorithm.

use crate::perfdb::PerfDb;
use crate::PredictResult;
use msr_runtime::{Distribution, IoStrategy};
use msr_sim::SimDuration;
use msr_storage::OpKind;
use serde::{Deserialize, Serialize};

/// The distribution facts the model needs, decoupled from `Distribution`
/// so plans can also be written down directly (e.g. from catalog rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessSummary {
    /// Bytes of one dump of the full dataset.
    pub total_bytes: u64,
    /// Number of processes.
    pub nprocs: u32,
    /// Contiguous file runs per process (naive's per-proc call count).
    pub runs_per_proc: u64,
    /// Bytes of one contiguous run.
    pub run_bytes: u64,
    /// Bytes of a process's covering extent (data sieving's unit).
    pub extent_bytes: u64,
    /// Bytes a single process owns (subfile's unit).
    pub proc_bytes: u64,
}

impl AccessSummary {
    /// Summarize a concrete distribution (rank 0 is representative; block
    /// decompositions are balanced to ±1 element).
    pub fn of(dist: &Distribution) -> Self {
        let chunks = dist.chunks_for(0);
        let extent = dist.extent_for(0).map(|e| e.len).unwrap_or(0);
        AccessSummary {
            total_bytes: dist.total_bytes(),
            nprocs: dist.nprocs() as u32,
            runs_per_proc: chunks.len() as u64,
            run_bytes: chunks.first().map(|c| c.len).unwrap_or(0),
            extent_bytes: extent,
            proc_bytes: dist.bytes_for(0),
        }
    }

    /// Native calls per dump under a strategy (the `n(j)` of eq. (2)).
    pub fn native_calls(&self, strategy: IoStrategy) -> u64 {
        match strategy {
            IoStrategy::Naive => u64::from(self.nprocs) * self.runs_per_proc,
            IoStrategy::DataSieving => u64::from(self.nprocs),
            IoStrategy::Collective => 1,
            IoStrategy::Subfile => u64::from(self.nprocs),
        }
    }
}

/// Predicted cost of one dump of the dataset under `strategy` on
/// `resource`, per the composed eq. (1). Returns the parallel makespan.
pub fn dump_time(
    db: &PerfDb,
    resource: &str,
    op: OpKind,
    strategy: IoStrategy,
    access: &AccessSummary,
) -> PredictResult<SimDuration> {
    Ok(dump_time_with(db.get(resource, op)?, strategy, access))
}

/// [`dump_time`] against an explicit profile, for callers that hold one
/// directly — e.g. the read-ahead estimator, which synthesizes a profile
/// from a resource's model hooks when the database has no measured row.
pub fn dump_time_with(
    p: &crate::perfdb::ResourceProfile,
    strategy: IoStrategy,
    access: &AccessSummary,
) -> SimDuration {
    let f = p.fixed;
    let session = f.conn + f.connclose;
    let per_proc = match strategy {
        IoStrategy::Collective => {
            // One aggregated native call: conn + open + T(total) + close +
            // connclose — the paper's worked example exactly. No seek: the
            // aggregated call streams from offset 0 (Table 1 writes its
            // seek column as "-" for exactly this reason).
            f.open + p.transfer_time(access.total_bytes) + f.close
        }
        IoStrategy::Naive => {
            // Each process: one open, then per run a seek and a transfer
            // contending with the other P−1 processes.
            let contended = p.transfer_time(access.run_bytes) * f64::from(access.nprocs.max(1));
            f.open + (f.seek + contended) * access.runs_per_proc as f64 + f.close
        }
        IoStrategy::DataSieving => {
            // One covering-extent access per process (write adds the RMW
            // read pass, priced by the caller issuing two dump_time calls
            // if desired; the single pass is the dominant term).
            let contended = p.transfer_time(access.extent_bytes) * f64::from(access.nprocs.max(1));
            f.open + f.seek + contended + f.close
        }
        IoStrategy::Subfile => {
            let contended = p.transfer_time(access.proc_bytes) * f64::from(access.nprocs.max(1));
            f.open + contended + f.close
        }
    };
    session + per_proc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfdb::ResourceProfile;
    use msr_runtime::{Dims3, Pattern, ProcGrid};
    use msr_storage::{FixedCosts, StorageKind};

    fn db() -> PerfDb {
        let mut db = PerfDb::new();
        db.insert(
            "sdsc-disk",
            OpKind::Write,
            ResourceProfile {
                kind: StorageKind::RemoteDisk,
                fixed: FixedCosts {
                    conn: SimDuration::from_secs(0.44),
                    open: SimDuration::from_secs(0.42),
                    seek: SimDuration::ZERO,
                    close: SimDuration::from_secs(0.83),
                    connclose: SimDuration::from_secs(0.0002),
                },
                // ~0.295 MB/s effective rate with a WAN latency floor at
                // small sizes (what a full PTool sweep measures).
                samples: vec![
                    (4_096, 0.044),
                    (262_144, 0.889),
                    (2_097_152, 7.109),
                    (16_777_216, 56.87),
                ],
            },
        );
        db
    }

    fn access(n: u64, procs: (u32, u32, u32), elem: u64) -> AccessSummary {
        let dist = Distribution::new(
            Dims3::cube(n),
            elem,
            Pattern::bbb(),
            ProcGrid::new(procs.0, procs.1, procs.2),
        )
        .unwrap();
        AccessSummary::of(&dist)
    }

    #[test]
    fn collective_dump_matches_paper_worked_example_shape() {
        // 2 MB collective write to remote disk ≈ 8.5 s (paper: 8.47).
        let a = access(128, (1, 1, 1), 1);
        assert_eq!(a.total_bytes, 2_097_152);
        let t = dump_time(
            &db(),
            "sdsc-disk",
            OpKind::Write,
            IoStrategy::Collective,
            &a,
        )
        .unwrap()
        .as_secs();
        assert!((8.0..9.0).contains(&t), "got {t}");
    }

    #[test]
    fn native_call_counts() {
        let a = access(128, (2, 2, 2), 4);
        assert_eq!(a.native_calls(IoStrategy::Collective), 1);
        assert_eq!(a.native_calls(IoStrategy::Subfile), 8);
        assert_eq!(a.native_calls(IoStrategy::DataSieving), 8);
        assert_eq!(a.native_calls(IoStrategy::Naive), 8 * 64 * 64);
    }

    #[test]
    fn naive_costs_dwarf_collective_on_remote() {
        let a = access(64, (2, 2, 2), 4);
        let d = db();
        let coll = dump_time(&d, "sdsc-disk", OpKind::Write, IoStrategy::Collective, &a).unwrap();
        let naive = dump_time(&d, "sdsc-disk", OpKind::Write, IoStrategy::Naive, &a).unwrap();
        assert!(
            naive.as_secs() > 3.0 * coll.as_secs(),
            "naive {naive} vs collective {coll}"
        );
    }

    #[test]
    fn subfile_between_naive_and_collective() {
        let a = access(64, (2, 2, 2), 4);
        let d = db();
        let coll = dump_time(&d, "sdsc-disk", OpKind::Write, IoStrategy::Collective, &a).unwrap();
        let sub = dump_time(&d, "sdsc-disk", OpKind::Write, IoStrategy::Subfile, &a).unwrap();
        let naive = dump_time(&d, "sdsc-disk", OpKind::Write, IoStrategy::Naive, &a).unwrap();
        assert!(coll <= sub && sub <= naive, "{coll} <= {sub} <= {naive}");
    }

    #[test]
    fn missing_profile_is_an_error() {
        let a = access(16, (1, 1, 1), 4);
        assert!(dump_time(&db(), "sdsc-disk", OpKind::Read, IoStrategy::Collective, &a).is_err());
    }

    #[test]
    fn access_summary_of_single_proc() {
        let a = access(32, (1, 1, 1), 4);
        assert_eq!(a.runs_per_proc, 1);
        assert_eq!(a.run_bytes, a.total_bytes);
        assert_eq!(a.proc_bytes, a.total_bytes);
        assert_eq!(a.extent_bytes, a.total_bytes);
    }
}
