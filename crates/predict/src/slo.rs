//! SLO pricing: the predicted *queue wait* a new session faces.
//!
//! Eq. (2) predicts how long a run's own I/O takes; admission control
//! needs the other half of response time — how long the run waits behind
//! work that is already queued. The scheduler tracks, per resource, the
//! summed eq. (1) predicted service time of everything in its admission
//! queue (the *backlog*); [`queue_wait`] folds that backlog together
//! with the per-batch dispatch overhead the queued requests will incur
//! ahead of the newcomer. Comparing the result against a tenant's SLO is
//! the paper's predictor-as-admission-signal pattern: the same model
//! that picks *where* a dump goes decides *whether* it should be
//! admitted at all.

use msr_sim::SimDuration;

/// Predicted wait behind a resource's current queue: the summed
/// predicted service time of `depth` already-queued requests
/// (`backlog`), plus one dispatch `overhead` charge per batch they will
/// be served in (`chain` requests per batch, conservatively assuming
/// full batches; a partial final batch still pays one charge).
pub fn queue_wait(
    backlog: SimDuration,
    depth: usize,
    chain: usize,
    overhead: SimDuration,
) -> SimDuration {
    let batches = depth.div_ceil(chain.max(1));
    backlog + overhead * batches as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_costs_nothing() {
        let w = queue_wait(SimDuration::ZERO, 0, 8, SimDuration::from_secs(0.002));
        assert_eq!(w, SimDuration::ZERO);
    }

    #[test]
    fn wait_is_monotone_in_backlog_and_depth() {
        let oh = SimDuration::from_secs(0.002);
        let base = queue_wait(SimDuration::from_secs(1.0), 8, 8, oh);
        let more_backlog = queue_wait(SimDuration::from_secs(2.0), 8, 8, oh);
        let more_depth = queue_wait(SimDuration::from_secs(1.0), 16, 8, oh);
        assert!(more_backlog > base);
        assert!(more_depth > base);
    }

    #[test]
    fn partial_batches_still_pay_one_dispatch_charge() {
        let oh = SimDuration::from_secs(0.002);
        // 9 requests at chain 8 → 2 batches.
        let w = queue_wait(SimDuration::ZERO, 9, 8, oh);
        assert_eq!(w, oh * 2.0);
        // Degenerate chain of 0 is treated as 1 per batch.
        let w = queue_wait(SimDuration::ZERO, 3, 0, oh);
        assert_eq!(w, oh * 3.0);
    }
}
