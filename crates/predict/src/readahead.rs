//! Fetch-cost estimation for the prediction-driven prefetcher.
//!
//! The scheduler's read-ahead admission rule compares the predicted cost
//! of staging a future read against the predicted idle window before that
//! read's chain is served. Both sides come from eq. (2) pieces: the window
//! is the sum of `dump_time` estimates for the requests queued ahead, and
//! the fetch cost is a `dump_time` for the read itself. This module
//! supplies the profile those estimates run against — the measured
//! [`PerfDb`] row when the performance database has one, else a profile
//! synthesized from the resource's own deterministic model hooks
//! ([`msr_storage::StorageResource::fixed_costs`] /
//! [`msr_storage::StorageResource::transfer_model`]), so prefetch admission
//! works even before a PTool sweep has populated the database.

use crate::model::{dump_time_with, AccessSummary};
use crate::perfdb::{PerfDb, ResourceProfile};
use msr_runtime::IoStrategy;
use msr_sim::SimDuration;
use msr_storage::{OpKind, SharedResource};

/// Request sizes sampled from the transfer model when synthesizing a
/// profile: 4 KB to 128 MB, the range the PTool sweeps.
const SYNTH_SAMPLE_BYTES: [u64; 5] = [4_096, 65_536, 1 << 20, 1 << 24, 1 << 27];

/// The eq. (2) profile for `res` under `op`: the measured database row
/// when `db` has one, else one synthesized from the resource's model
/// hooks. Synthesis is deterministic (model hooks carry no jitter), so
/// admission decisions are reproducible either way.
pub fn profile_for(db: Option<&PerfDb>, res: &SharedResource, op: OpKind) -> ResourceProfile {
    let r = res.lock();
    if let Some(db) = db {
        if let Ok(p) = db.get(r.name(), op) {
            return p.clone();
        }
    }
    ResourceProfile {
        kind: r.kind(),
        fixed: r.fixed_costs(op),
        samples: SYNTH_SAMPLE_BYTES
            .iter()
            .map(|&b| (b, r.transfer_model(op, b, 1).as_secs()))
            .collect(),
    }
}

/// Predicted time to move one dump of `access` under `strategy` against
/// `profile` — used for both sides of the admission inequality.
pub fn fetch_estimate(
    profile: &ResourceProfile,
    strategy: IoStrategy,
    access: &AccessSummary,
) -> SimDuration {
    dump_time_with(profile, strategy, access)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msr_runtime::{Dims3, Distribution, Pattern, ProcGrid};
    use msr_storage::{share, DiskParams, LocalDisk};

    fn disk() -> SharedResource {
        share(LocalDisk::new("d", DiskParams::simple(50.0, 1 << 30), 3))
    }

    fn access() -> AccessSummary {
        let dist =
            Distribution::new(Dims3::cube(64), 4, Pattern::bbb(), ProcGrid::new(2, 2, 2)).unwrap();
        AccessSummary::of(&dist)
    }

    #[test]
    fn synthesized_profile_tracks_the_model_hooks() {
        let r = disk();
        let p = profile_for(None, &r, OpKind::Read);
        let expected = {
            let r = r.lock();
            (r.kind(), r.fixed_costs(OpKind::Read))
        };
        assert_eq!(p.kind, expected.0);
        assert_eq!(p.fixed, expected.1);
        assert_eq!(p.samples.len(), SYNTH_SAMPLE_BYTES.len());
        // A 50 MB/s disk should price ~1 MB at ~0.02 s in the curve.
        let t = p.transfer_time(1 << 20).as_secs();
        assert!((0.005..0.1).contains(&t), "got {t}");
    }

    #[test]
    fn measured_profile_wins_over_synthesis() {
        let r = disk();
        let mut db = PerfDb::new();
        let mut measured = profile_for(None, &r, OpKind::Read);
        measured.samples = vec![(1, 123.0), (1 << 30, 123.0)];
        db.insert("d", OpKind::Read, measured);
        let p = profile_for(Some(&db), &r, OpKind::Read);
        assert!(
            p.transfer_time(1 << 20).as_secs() > 100.0,
            "the planted measured curve was used"
        );
    }

    #[test]
    fn estimate_is_deterministic_and_positive() {
        let r = disk();
        let p = profile_for(None, &r, OpKind::Read);
        let a = access();
        let t1 = fetch_estimate(&p, IoStrategy::Collective, &a);
        let t2 = fetch_estimate(&p, IoStrategy::Collective, &a);
        assert_eq!(t1, t2);
        assert!(t1 > SimDuration::ZERO);
    }
}
