//! Per-dataset transfer-ratio learning for the chunked data plane.
//!
//! When a dataset is ingested through `msr-chunk`, the bytes that actually
//! cross the wire and land on media are the *post-compression, post-dedup*
//! bytes — often far fewer than the logical dump size eq. (2) would
//! otherwise price. The [`RatioBook`] learns the observed
//! `moved / logical` ratio per dataset with the same exponential moving
//! average the [`crate::feeder::PerfDbFeeder`] uses for eq. (1)
//! components, and [`AccessSummary::scaled`] applies it so placement,
//! prefetch admission, and lifecycle pricing all estimate the bytes the
//! chunk plane will really move.
//!
//! Datasets the book has never observed (or with chunking disabled)
//! predict at ratio `1.0`, and [`AccessSummary::scaled`] is a bitwise
//! no-op at `1.0` — predictions without chunking are unchanged.

use crate::model::AccessSummary;
use std::collections::BTreeMap;

/// EWMA book of observed `moved / logical` byte ratios, keyed by dataset.
#[derive(Debug, Clone)]
pub struct RatioBook {
    /// EWMA smoothing factor in `(0, 1]`: weight of the newest
    /// observation. Matches the feeder's default of `0.3`.
    pub alpha: f64,
    cells: BTreeMap<String, f64>,
}

impl Default for RatioBook {
    fn default() -> Self {
        RatioBook {
            alpha: 0.3,
            cells: BTreeMap::new(),
        }
    }
}

impl RatioBook {
    /// A book with the default smoothing (`alpha = 0.3`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observed dump: `logical` bytes requested, `moved` bytes
    /// actually shipped (frames for absent chunks plus the manifest).
    /// Zero-byte dumps are ignored — they carry no ratio information.
    pub fn observe(&mut self, dataset: &str, logical: u64, moved: u64) {
        if logical == 0 {
            return;
        }
        let sample = (moved as f64 / logical as f64).clamp(0.0, 2.0);
        match self.cells.get_mut(dataset) {
            Some(cell) => *cell = *cell * (1.0 - self.alpha) + sample * self.alpha,
            None => {
                // First observation is adopted outright, as the feeder
                // does when it inserts a new transfer anchor.
                self.cells.insert(dataset.to_string(), sample);
            }
        }
    }

    /// The learned ratio for `dataset`, or `1.0` when nothing has been
    /// observed yet (raw datasets never enter the book, so they always
    /// predict at full logical size).
    pub fn ratio(&self, dataset: &str) -> f64 {
        self.cells.get(dataset).copied().unwrap_or(1.0)
    }

    /// Number of datasets with learned ratios.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no dataset has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl AccessSummary {
    /// This access with every byte figure scaled by `ratio` — the shape
    /// eq. (2) should price when the chunk plane is expected to move only
    /// `ratio` of the logical bytes. Counts (`nprocs`, `runs_per_proc`)
    /// are untouched: dedup shrinks transfers, not the access pattern.
    ///
    /// At `ratio >= 1.0` (or a non-finite ratio) this returns `self`
    /// unchanged, so predictions for unchunked datasets stay bitwise
    /// identical.
    pub fn scaled(&self, ratio: f64) -> AccessSummary {
        if !ratio.is_finite() || ratio >= 1.0 {
            return *self;
        }
        let r = ratio.max(0.0);
        // Never round a nonzero figure down to zero: a dump that moves
        // any bytes at all still pays per-call fixed costs on a nonempty
        // transfer.
        let scale = |b: u64| -> u64 {
            if b == 0 {
                0
            } else {
                (((b as f64) * r).round() as u64).max(1)
            }
        };
        AccessSummary {
            total_bytes: scale(self.total_bytes),
            nprocs: self.nprocs,
            runs_per_proc: self.runs_per_proc,
            run_bytes: scale(self.run_bytes),
            extent_bytes: scale(self.extent_bytes),
            proc_bytes: scale(self.proc_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access() -> AccessSummary {
        AccessSummary {
            total_bytes: 1 << 20,
            nprocs: 8,
            runs_per_proc: 16,
            run_bytes: 8192,
            extent_bytes: 1 << 17,
            proc_bytes: 1 << 17,
        }
    }

    #[test]
    fn unknown_datasets_predict_at_full_size() {
        let book = RatioBook::new();
        assert_eq!(book.ratio("astro3d"), 1.0);
        assert_eq!(access().scaled(book.ratio("astro3d")), access());
    }

    #[test]
    fn first_observation_is_adopted_then_smoothed() {
        let mut book = RatioBook::new();
        book.observe("ckpt", 1000, 250);
        assert!((book.ratio("ckpt") - 0.25).abs() < 1e-12);
        book.observe("ckpt", 1000, 750);
        // 0.25 * 0.7 + 0.75 * 0.3 = 0.40
        assert!((book.ratio("ckpt") - 0.40).abs() < 1e-12);
    }

    #[test]
    fn scaling_shrinks_byte_figures_but_not_counts() {
        let a = access().scaled(0.25);
        assert_eq!(a.total_bytes, 1 << 18);
        assert_eq!(a.run_bytes, 2048);
        assert_eq!(a.nprocs, 8);
        assert_eq!(a.runs_per_proc, 16);
    }

    #[test]
    fn nonzero_figures_never_scale_to_zero() {
        let a = AccessSummary {
            total_bytes: 3,
            nprocs: 1,
            runs_per_proc: 1,
            run_bytes: 3,
            extent_bytes: 3,
            proc_bytes: 3,
        };
        let s = a.scaled(0.001);
        assert_eq!(s.total_bytes, 1);
        assert_eq!(s.run_bytes, 1);
    }

    #[test]
    fn ratios_above_one_and_zero_dumps_are_handled() {
        let mut book = RatioBook::new();
        book.observe("d", 0, 500);
        assert_eq!(book.ratio("d"), 1.0);
        book.observe("d", 100, 500); // clamped to 2.0
        assert!((book.ratio("d") - 2.0).abs() < 1e-12);
        // Inflating ratios still price at the unscaled shape: the plane
        // never ships more than logical + bounded framing overhead.
        assert_eq!(access().scaled(book.ratio("d")), access());
    }
}
