//! Property tests for the eq. (2) prediction algorithm: predicted run time
//! must be monotone in the knobs the user can turn — non-decreasing in the
//! iteration count and non-increasing in the dump frequency (dumping less
//! often can never cost more).
//!
//! Deterministic seeded sweeps stand in for a property-testing harness
//! (the offline build cannot pull one in).

use msr_predict::{AccessSummary, DatasetPlan, PerfDb, Predictor, ResourceProfile, RunSpec};
use msr_runtime::{Dims3, Distribution, IoStrategy, Pattern, ProcGrid};
use msr_sim::SimDuration;
use msr_storage::{FixedCosts, OpKind, StorageKind};
use rand::{Rng, SeedableRng, StdRng};

const CASES: u64 = 64;

/// A randomized but well-formed profile: positive fixed costs and a
/// strictly increasing transfer curve.
fn rand_profile(rng: &mut StdRng) -> ResourceProfile {
    let rate_s_per_mb = rng.random_range(0.05f64..5.0);
    let base = 1u64 << rng.random_range(18u32..21);
    ResourceProfile {
        kind: StorageKind::RemoteDisk,
        fixed: FixedCosts {
            conn: SimDuration::from_secs(rng.random_range(0.0f64..1.0)),
            open: SimDuration::from_secs(rng.random_range(0.0f64..1.0)),
            seek: SimDuration::from_secs(rng.random_range(0.0f64..0.5)),
            close: SimDuration::from_secs(rng.random_range(0.0f64..1.0)),
            connclose: SimDuration::from_secs(rng.random_range(0.0f64..0.1)),
        },
        samples: (0..4)
            .map(|i| {
                let bytes = base << i;
                (bytes, bytes as f64 / (1 << 20) as f64 * rate_s_per_mb)
            })
            .collect(),
    }
}

fn rand_plan(rng: &mut StdRng, frequency: u32) -> DatasetPlan {
    let grid = ProcGrid::new(
        rng.random_range(1u32..=2),
        rng.random_range(1u32..=2),
        rng.random_range(1u32..=2),
    );
    let dims = Dims3::cube(1 << rng.random_range(4u64..=6));
    let strategy = match rng.random_range(0u32..4) {
        0 => IoStrategy::Naive,
        1 => IoStrategy::DataSieving,
        2 => IoStrategy::Collective,
        _ => IoStrategy::Subfile,
    };
    let dist = Distribution::new(dims, 4, Pattern::bbb(), grid).unwrap();
    DatasetPlan {
        name: "d".into(),
        resource: Some("r".into()),
        op: OpKind::Write,
        frequency,
        strategy,
        access: AccessSummary::of(&dist),
    }
}

fn total(predictor: &Predictor, iterations: u32, plan: &DatasetPlan) -> f64 {
    predictor
        .predict(&RunSpec {
            iterations,
            datasets: vec![plan.clone()],
        })
        .unwrap()
        .total
        .as_secs()
}

#[test]
fn prediction_is_monotone_in_iteration_count() {
    let mut rng = StdRng::seed_from_u64(0xEC2A);
    for _ in 0..CASES {
        let mut db = PerfDb::new();
        db.insert("r", OpKind::Write, rand_profile(&mut rng));
        let p = Predictor::new(db);
        let freq = rng.random_range(1u32..=12);
        let plan = rand_plan(&mut rng, freq);
        let mut prev = -1.0f64;
        let base = rng.random_range(1u32..=30);
        for n in [base, base * 2, base * 4, base * 8] {
            let t = total(&p, n, &plan);
            assert!(
                t >= prev,
                "more iterations predicted cheaper: N={n} gives {t}, prev {prev} ({plan:?})"
            );
            prev = t;
        }
    }
}

#[test]
fn prediction_is_monotone_in_dump_frequency() {
    let mut rng = StdRng::seed_from_u64(0xF2E0);
    for _ in 0..CASES {
        let mut db = PerfDb::new();
        db.insert("r", OpKind::Write, rand_profile(&mut rng));
        let p = Predictor::new(db);
        let iterations = rng.random_range(24u32..=240);
        let plan = rand_plan(&mut rng, 1);
        let mut prev = f64::INFINITY;
        for freq in [1u32, 2, 4, 8, 16, 32] {
            let t = total(&p, iterations, &plan.clone_with_freq(freq));
            assert!(
                t <= prev,
                "dumping less often predicted dearer: freq={freq} gives {t}, prev {prev}"
            );
            prev = t;
        }
    }
}

/// Helper: same plan, different frequency — the sweep must vary only the
/// knob under test.
trait CloneWithFreq {
    fn clone_with_freq(&self, f: u32) -> DatasetPlan;
}

impl CloneWithFreq for DatasetPlan {
    fn clone_with_freq(&self, f: u32) -> DatasetPlan {
        let mut p = self.clone();
        p.frequency = f;
        p
    }
}
