//! # msr-apps — the simulation environment's applications
//!
//! The paper's Fig. 1(b) data flow, implemented for real:
//!
//! * [`astro3d`] — the data producer: a (simplified but genuine)
//!   3-D compressible-hydrodynamics stepper producing the paper's 19
//!   datasets — six float analysis variables (`press, temp, rho, ux, uy,
//!   uz`), seven u8 visualization variables (`vr_*`) and six float
//!   checkpoint variables (`restart_*`) — dumped through the msr-core
//!   session at per-kind frequencies.
//! * [`analysis`] — the data consumer: Maximum/mean Square Error between
//!   consecutive dumped timesteps of one variable.
//! * [`volren`] — consumer *and* producer: a parallel ray-casting volume
//!   renderer (maximum-intensity and alpha-compositing modes) that turns a
//!   `vr_*` volume into a 2-D image per iteration — the "large numbers of
//!   small files" workload behind the superfile experiment.
//! * [`image`] — the viewer stand-in: PGM encode/decode and image
//!   statistics.
//! * [`multi`] — deterministic multi-client fleets (producer + renderer +
//!   analyzer mixes) for the msr-sched concurrency experiments.
//! * [`workload`] — deterministic synthetic volumes for tests and benches.
//!
//! Fields are computed with rayon data-parallelism (the compute side of
//! the SP-2), while all I/O flows through the architecture under test.

pub mod analysis;
pub mod astro3d;
pub mod image;
pub mod multi;
pub mod volren;
pub mod workload;

pub use analysis::{max_square_error, mean_square_error, AnalysisSeries};
pub use astro3d::{Astro3d, Astro3dConfig, PlacementPlan, StepMode};
pub use image::Image;
pub use multi::{
    batch_fleet, client_fleet, consumer_fleet, noisy_fleet, quiet_fleet,
    register_antagonist_tenants, run_concurrent, run_concurrent_prefetch, run_overloaded,
    run_sequential, strip_tenants, ClientKind,
};
pub use volren::{render, RenderMode};
pub use workload::synthetic_volume;

/// Convert an f32 field to little-endian bytes (dataset wire format).
pub fn f32s_to_bytes(xs: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 4);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Convert little-endian bytes back to f32s.
pub fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_byte_roundtrip() {
        let xs = vec![0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE];
        assert_eq!(bytes_to_f32s(&f32s_to_bytes(&xs)), xs);
    }

    #[test]
    fn byte_length_is_4x() {
        assert_eq!(f32s_to_bytes(&[1.0; 10]).len(), 40);
        assert!(
            bytes_to_f32s(&[0u8; 7]).len() == 1,
            "trailing bytes ignored"
        );
    }
}
