//! Astro3D — the data-producing hydrodynamics simulation.
//!
//! A compact but genuine stand-in for the Malagoli/Dubey/Cattaneo code the
//! paper uses: it integrates compressible-hydro equations on a periodic
//! 3-D grid — upwind (Godunov-flavoured) advection for density,
//! temperature and momentum, a pressure-gradient velocity update, and a
//! Crank–Nicolson-style iterative solve for nonlinear thermal diffusion
//! (conductivity varying with temperature, as in the paper's description).
//! Every dump goes through the msr-core [`Session`], producing the 19
//! datasets of Fig. 11 at per-kind frequencies (Table 2).

use crate::f32s_to_bytes;
use msr_core::{CoreResult, DatasetHandle, DatasetSpec, FutureUse, LocationHint, Session};
use msr_meta::{AccessMode, ElementType};
use msr_runtime::{Dims3, IoStrategy, ProcGrid};
use msr_sim::stream_rng;
use rand::Rng;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// The six float analysis variables.
pub const ANALYSIS_VARS: [&str; 6] = ["press", "temp", "rho", "ux", "uy", "uz"];
/// The seven u8 visualization variables.
pub const VIZ_VARS: [&str; 7] = [
    "vr_scalar",
    "vr_press",
    "vr_rho",
    "vr_temp",
    "vr_mach",
    "vr_ek",
    "vr_logrho",
];
/// The six float checkpoint variables (overwritten in place).
pub const RESTART_VARS: [&str; 6] = [
    "restart_press",
    "restart_temp",
    "restart_rho",
    "restart_ux",
    "restart_uy",
    "restart_uz",
];

/// Per-dataset location hints for a run — the knob the paper's five Fig. 9
/// configurations turn.
#[derive(Debug, Clone, Default)]
pub struct PlacementPlan {
    hints: BTreeMap<String, LocationHint>,
    /// Hint used for datasets not explicitly listed.
    pub default: LocationHint,
}

impl PlacementPlan {
    /// Everything to one location.
    pub fn uniform(hint: LocationHint) -> Self {
        PlacementPlan {
            hints: BTreeMap::new(),
            default: hint,
        }
    }

    /// Override one dataset's hint.
    pub fn with(mut self, name: &str, hint: LocationHint) -> Self {
        self.hints.insert(name.to_owned(), hint);
        self
    }

    /// The hint for a dataset.
    pub fn hint_for(&self, name: &str) -> LocationHint {
        self.hints.get(name).copied().unwrap_or(self.default)
    }

    /// The paper's Fig. 9 configurations (1)–(5).
    pub fn fig9(config: u8) -> Self {
        let tape = PlacementPlan::uniform(LocationHint::RemoteTape);
        match config {
            1 => tape,
            2 => tape.with("temp", LocationHint::RemoteDisk),
            3 => PlacementPlan::uniform(LocationHint::Disable)
                .with("temp", LocationHint::RemoteDisk)
                .with("press", LocationHint::RemoteDisk),
            4 => tape.with("vr_temp", LocationHint::LocalDisk),
            5 => PlacementPlan::uniform(LocationHint::Disable)
                .with("vr_temp", LocationHint::LocalDisk)
                .with("vr_press", LocationHint::RemoteDisk),
            other => panic!("fig9 has configurations 1–5, not {other}"),
        }
    }
}

/// Run configuration (the paper's Table 2 defaults via
/// [`Astro3dConfig::paper_table2`]).
#[derive(Debug, Clone)]
pub struct Astro3dConfig {
    /// Cubic problem size per dimension.
    pub n: u64,
    /// Max number of iterations `N`.
    pub iterations: u32,
    /// Analysis-dataset dump frequency.
    pub analysis_freq: u32,
    /// Visualization-dataset dump frequency.
    pub viz_freq: u32,
    /// Checkpoint dump frequency.
    pub ckpt_freq: u32,
    /// Process grid.
    pub grid: ProcGrid,
    /// Per-dataset placement hints.
    pub plan: PlacementPlan,
    /// I/O optimization for all datasets.
    pub strategy: IoStrategy,
    /// How iterations advance the state (full physics or the cheap
    /// evolution used by I/O-focused experiment harnesses).
    pub step_mode: StepMode,
    /// Seed for the initial perturbation field.
    pub seed: u64,
}

/// How [`Astro3d::run`] advances the state between dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// The real hydro step — use for physics-meaningful output.
    #[default]
    Physics,
    /// A cheap deterministic evolution (roll + ripple): consecutive dumps
    /// still differ, but a 128-cubed 120-iteration run finishes in
    /// seconds. I/O costs are identical either way; the paper's
    /// evaluation only measures I/O.
    Cheap,
}

impl Astro3dConfig {
    /// A small, fast configuration for tests and examples.
    pub fn small(n: u64, iterations: u32) -> Self {
        Astro3dConfig {
            n,
            iterations,
            analysis_freq: 6,
            viz_freq: 6,
            ckpt_freq: 6,
            grid: ProcGrid::new(2, 2, 2),
            plan: PlacementPlan::uniform(LocationHint::RemoteTape),
            strategy: IoStrategy::Collective,
            step_mode: StepMode::Physics,
            seed: 42,
        }
    }

    /// The paper's Table 2 production parameters: 128³, 120 iterations,
    /// every dataset kind dumped every 6 iterations (≈ 2.2 GB total).
    pub fn paper_table2() -> Self {
        let mut c = Astro3dConfig::small(128, 120);
        c.grid = ProcGrid::new(2, 2, 2);
        c
    }

    /// Total bytes this configuration will dump.
    pub fn total_dump_bytes(&self) -> u64 {
        let cube = self.n * self.n * self.n;
        let dumps = |f: u32| u64::from(self.iterations / f.max(1) + 1);
        6 * cube * 4 * dumps(self.analysis_freq)
            + 7 * cube * dumps(self.viz_freq)
            + 6 * cube * 4 * dumps(self.ckpt_freq)
    }
}

/// The simulation state.
pub struct Astro3d {
    /// The configuration.
    pub cfg: Astro3dConfig,
    n: usize,
    rho: Vec<f32>,
    temp: Vec<f32>,
    ux: Vec<f32>,
    uy: Vec<f32>,
    uz: Vec<f32>,
    iter: u32,
}

const DT: f32 = 0.05;
const KAPPA0: f32 = 0.02;

impl Astro3d {
    /// Initialize: a hot, dense central blob in a quiescent background with
    /// seeded small-scale perturbations (turbulent-convection flavour).
    pub fn new(cfg: Astro3dConfig) -> Self {
        let n = cfg.n as usize;
        let total = n * n * n;
        let mut rng = stream_rng(cfg.seed, "astro3d-init");
        let mut rho = vec![1.0f32; total];
        let mut temp = vec![1.0f32; total];
        let mut ux = vec![0.0f32; total];
        let mut uy = vec![0.0f32; total];
        let mut uz = vec![0.0f32; total];
        let c = (n as f32 - 1.0) / 2.0;
        let r0 = n as f32 / 4.0;
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let i = (x * n + y) * n + z;
                    let dx = x as f32 - c;
                    let dy = y as f32 - c;
                    let dz = z as f32 - c;
                    let r2 = (dx * dx + dy * dy + dz * dz) / (r0 * r0);
                    let blob = (-r2).exp();
                    rho[i] = 1.0 + 0.5 * blob + 0.02 * rng.random_range(-1.0f32..1.0);
                    temp[i] = 1.0 + 1.5 * blob + 0.02 * rng.random_range(-1.0f32..1.0);
                    ux[i] = 0.05 * rng.random_range(-1.0f32..1.0);
                    uy[i] = 0.05 * rng.random_range(-1.0f32..1.0);
                    uz[i] = 0.05 * rng.random_range(-1.0f32..1.0);
                }
            }
        }
        Astro3d {
            cfg,
            n,
            rho,
            temp,
            ux,
            uy,
            uz,
            iter: 0,
        }
    }

    /// Current iteration number.
    pub fn iteration(&self) -> u32 {
        self.iter
    }

    /// One time step: upwind advection + pressure acceleration +
    /// Crank–Nicolson-style nonlinear diffusion on temperature.
    pub fn step(&mut self) {
        let n = self.n;
        let press = self.pressure();

        // Advect each quantity with first-order upwind differences and the
        // compressibility source on density.
        let adv = |q: &[f32], with_div: bool| -> Vec<f32> {
            let (ux, uy, uz) = (&self.ux, &self.uy, &self.uz);
            let mut out = vec![0.0f32; q.len()];
            out.par_chunks_mut(n * n).enumerate().for_each(|(x, slab)| {
                let xp = (x + 1) % n;
                let xm = (x + n - 1) % n;
                for y in 0..n {
                    let yp = (y + 1) % n;
                    let ym = (y + n - 1) % n;
                    for z in 0..n {
                        let zp = (z + 1) % n;
                        let zm = (z + n - 1) % n;
                        let i = (x * n + y) * n + z;
                        let il = |a: usize, b: usize, c: usize| (a * n + b) * n + c;
                        let (u, v, w) = (ux[i], uy[i], uz[i]);
                        let dqx = if u >= 0.0 {
                            q[i] - q[il(xm, y, z)]
                        } else {
                            q[il(xp, y, z)] - q[i]
                        };
                        let dqy = if v >= 0.0 {
                            q[i] - q[il(x, ym, z)]
                        } else {
                            q[il(x, yp, z)] - q[i]
                        };
                        let dqz = if w >= 0.0 {
                            q[i] - q[il(x, y, zm)]
                        } else {
                            q[il(x, y, zp)] - q[i]
                        };
                        let mut dq = -(u * dqx + v * dqy + w * dqz);
                        if with_div {
                            let div = (ux[il(xp, y, z)] - ux[il(xm, y, z)] + uy[il(x, yp, z)]
                                - uy[il(x, ym, z)]
                                + uz[il(x, y, zp)]
                                - uz[il(x, y, zm)])
                                / 2.0;
                            dq -= q[i] * div;
                        }
                        slab[y * n + z] = q[i] + DT * dq;
                    }
                }
            });
            out
        };

        let new_rho = adv(&self.rho, true);
        let new_temp = adv(&self.temp, false);
        let new_ux = adv(&self.ux, false);
        let new_uy = adv(&self.uy, false);
        let new_uz = adv(&self.uz, false);
        self.rho = new_rho;
        self.temp = new_temp;
        self.ux = new_ux;
        self.uy = new_uy;
        self.uz = new_uz;

        // Pressure-gradient acceleration (operator split).
        let rho = self.rho.clone();
        let accel = |u: &mut Vec<f32>, axis: usize| {
            let nn = n;
            u.par_chunks_mut(nn * nn).enumerate().for_each(|(x, slab)| {
                for y in 0..nn {
                    for z in 0..nn {
                        let i = (x * nn + y) * nn + z;
                        let (pp, pm) = match axis {
                            0 => {
                                let xp = (x + 1) % nn;
                                let xm = (x + nn - 1) % nn;
                                (press[(xp * nn + y) * nn + z], press[(xm * nn + y) * nn + z])
                            }
                            1 => {
                                let yp = (y + 1) % nn;
                                let ym = (y + nn - 1) % nn;
                                (press[(x * nn + yp) * nn + z], press[(x * nn + ym) * nn + z])
                            }
                            _ => {
                                let zp = (z + 1) % nn;
                                let zm = (z + nn - 1) % nn;
                                (press[(x * nn + y) * nn + zp], press[(x * nn + y) * nn + zm])
                            }
                        };
                        let g = (pp - pm) / 2.0;
                        let s = slab[y * nn + z];
                        let val = (s - DT * g / rho[i].max(1e-3)).clamp(-1.0, 1.0);
                        slab[y * nn + z] = val;
                    }
                }
            });
        };
        accel(&mut self.ux, 0);
        accel(&mut self.uy, 1);
        accel(&mut self.uz, 2);

        // Nonlinear thermal diffusion, Crank–Nicolson via two Jacobi
        // sweeps: κ(T) = κ0·√T.
        let old = self.temp.clone();
        let mut guess = self.temp.clone();
        for _ in 0..2 {
            let next: Vec<f32> = (0..n)
                .into_par_iter()
                .flat_map_iter(|x| {
                    let old = &old;
                    let guess = &guess;
                    let xp = (x + 1) % n;
                    let xm = (x + n - 1) % n;
                    (0..n * n).map(move |yz| {
                        let y = yz / n;
                        let z = yz % n;
                        let yp = (y + 1) % n;
                        let ym = (y + n - 1) % n;
                        let zp = (z + 1) % n;
                        let zm = (z + n - 1) % n;
                        let il = |a: usize, b: usize, c: usize| (a * n + b) * n + c;
                        let i = il(x, y, z);
                        let kappa = KAPPA0 * old[i].max(0.0).sqrt();
                        let lap = |f: &[f32]| {
                            f[il(xp, y, z)]
                                + f[il(xm, y, z)]
                                + f[il(x, yp, z)]
                                + f[il(x, ym, z)]
                                + f[il(x, y, zp)]
                                + f[il(x, y, zm)]
                                - 6.0 * f[i]
                        };
                        // θ = ½: average the explicit and (Jacobi-lagged)
                        // implicit Laplacians.
                        (old[i] + 0.5 * DT * kappa * (lap(old) + lap(guess))).max(1e-3)
                    })
                })
                .collect();
            guess = next;
        }
        self.temp = guess;
        // Keep density physical.
        for r in &mut self.rho {
            *r = r.max(1e-3);
        }
        self.iter += 1;
    }

    /// The cheap evolution: roll every field one z-plane and superpose a
    /// small iteration-dependent ripple. Deterministic, O(n^3) adds only.
    pub fn cheap_step(&mut self) {
        let phase = self.iter as f32 * 0.37;
        for field in [
            &mut self.rho,
            &mut self.temp,
            &mut self.ux,
            &mut self.uy,
            &mut self.uz,
        ] {
            field.rotate_right(1);
            for (i, v) in field.iter_mut().enumerate() {
                *v = (*v + 0.001 * ((i as f32 * 0.01 + phase).sin())).max(1e-3);
            }
        }
        self.iter += 1;
    }

    /// Advance per the configured [`StepMode`].
    pub fn advance(&mut self) {
        match self.cfg.step_mode {
            StepMode::Physics => self.step(),
            StepMode::Cheap => self.cheap_step(),
        }
    }

    /// Ideal-gas pressure field.
    pub fn pressure(&self) -> Vec<f32> {
        self.rho
            .par_iter()
            .zip(self.temp.par_iter())
            .map(|(r, t)| r * t)
            .collect()
    }

    fn normalize_u8(xs: &[f32]) -> Vec<u8> {
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let span = (hi - lo).max(1e-12);
        xs.par_iter()
            .map(|&x| (((x - lo) / span) * 255.0) as u8)
            .collect()
    }

    /// The raw bytes of a named dataset's current snapshot, or `None` for
    /// an unknown name.
    pub fn field_bytes(&self, name: &str) -> Option<Vec<u8>> {
        let f32_field = |xs: &[f32]| Some(f32s_to_bytes(xs));
        match name {
            "press" | "restart_press" => f32_field(&self.pressure()),
            "temp" | "restart_temp" => f32_field(&self.temp),
            "rho" | "restart_rho" => f32_field(&self.rho),
            "ux" | "restart_ux" => f32_field(&self.ux),
            "uy" | "restart_uy" => f32_field(&self.uy),
            "uz" | "restart_uz" => f32_field(&self.uz),
            "vr_scalar" => Some(Self::normalize_u8(&self.temp)),
            "vr_press" => Some(Self::normalize_u8(&self.pressure())),
            "vr_rho" => Some(Self::normalize_u8(&self.rho)),
            "vr_temp" => Some(Self::normalize_u8(&self.temp)),
            "vr_mach" => {
                let m: Vec<f32> = (0..self.rho.len())
                    .into_par_iter()
                    .map(|i| {
                        let speed = (self.ux[i] * self.ux[i]
                            + self.uy[i] * self.uy[i]
                            + self.uz[i] * self.uz[i])
                            .sqrt();
                        speed / self.temp[i].max(1e-6).sqrt()
                    })
                    .collect();
                Some(Self::normalize_u8(&m))
            }
            "vr_ek" => {
                let e: Vec<f32> = (0..self.rho.len())
                    .into_par_iter()
                    .map(|i| {
                        0.5 * self.rho[i]
                            * (self.ux[i] * self.ux[i]
                                + self.uy[i] * self.uy[i]
                                + self.uz[i] * self.uz[i])
                    })
                    .collect();
                Some(Self::normalize_u8(&e))
            }
            "vr_logrho" => {
                let l: Vec<f32> = self.rho.par_iter().map(|r| r.max(1e-6).ln()).collect();
                Some(Self::normalize_u8(&l))
            }
            _ => None,
        }
    }

    /// Total mass (density integral) — a conservation diagnostic.
    pub fn total_mass(&self) -> f64 {
        self.rho.iter().map(|&r| f64::from(r)).sum()
    }

    /// The 19 dataset specifications of this configuration, hints applied
    /// from the placement plan.
    pub fn dataset_specs(&self) -> Vec<DatasetSpec> {
        let mut specs = Vec::with_capacity(19);
        let make = |name: &str, etype, freq, amode, fu: FutureUse| {
            DatasetSpec::builder(name)
                .element(etype)
                .dims(Dims3::cube(self.cfg.n))
                .frequency(freq)
                .amode(amode)
                .hint(self.cfg.plan.hint_for(name))
                .future_use(fu)
                .strategy(self.cfg.strategy)
                .build()
        };
        for v in ANALYSIS_VARS {
            specs.push(make(
                v,
                ElementType::F32,
                self.cfg.analysis_freq,
                AccessMode::Create,
                FutureUse::Analysis,
            ));
        }
        for v in VIZ_VARS {
            specs.push(make(
                v,
                ElementType::U8,
                self.cfg.viz_freq,
                AccessMode::Create,
                FutureUse::Visualization,
            ));
        }
        for v in RESTART_VARS {
            specs.push(make(
                v,
                ElementType::F32,
                self.cfg.ckpt_freq,
                AccessMode::OverWrite,
                FutureUse::Checkpoint,
            ));
        }
        specs
    }

    /// Restart from the checkpoint datasets of an earlier run: load the
    /// six `restart_*` fields from wherever the catalog says they live and
    /// resume at `iteration`. This is what the paper's checkpoint dumps
    /// (AMODE `over_write`) exist for.
    pub fn from_checkpoint(
        cfg: Astro3dConfig,
        sys: &msr_core::MsrSystem,
        run: msr_meta::RunId,
        iteration: u32,
    ) -> CoreResult<Astro3d> {
        let mut sim = Astro3d::new(cfg);
        let grid = sim.cfg.grid;
        let load = |name: &str| -> CoreResult<Vec<f32>> {
            let (bytes, _) = sys.read_dataset(run, name, iteration, grid, sim.cfg.strategy)?;
            Ok(crate::bytes_to_f32s(&bytes))
        };
        sim.rho = load("restart_rho")?;
        sim.temp = load("restart_temp")?;
        sim.ux = load("restart_ux")?;
        sim.uy = load("restart_uy")?;
        sim.uz = load("restart_uz")?;
        let expected = sim.n * sim.n * sim.n;
        for (name, f) in [
            ("rho", sim.rho.len()),
            ("temp", sim.temp.len()),
            ("ux", sim.ux.len()),
            ("uy", sim.uy.len()),
            ("uz", sim.uz.len()),
        ] {
            if f != expected {
                return Err(msr_core::CoreError::DatasetDisabled(format!(
                    "restart_{name}: checkpoint shape {f} does not match n^3 = {expected}"
                )));
            }
        }
        sim.iter = iteration;
        Ok(sim)
    }

    /// Drive the whole simulation through a session (the Fig. 2 main
    /// loop): dump due datasets each iteration, then advance the physics.
    pub fn run(&mut self, session: &mut Session<'_>) -> CoreResult<Vec<DatasetHandle>> {
        let specs = self.dataset_specs();
        let mut handles = Vec::with_capacity(specs.len());
        for spec in specs {
            handles.push((session.open(spec.clone())?, spec));
        }
        for iter in 0..=self.cfg.iterations {
            for (h, spec) in &handles {
                if session.dumps_at(*h, iter) {
                    let data = self
                        .field_bytes(&spec.name)
                        .expect("specs only name known fields");
                    session.write_iteration(*h, iter, &data)?;
                }
            }
            if iter < self.cfg.iterations {
                self.advance();
            }
        }
        Ok(handles.into_iter().map(|(h, _)| h).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msr_core::MsrSystem;

    fn sim(n: u64) -> Astro3d {
        Astro3d::new(Astro3dConfig::small(n, 12))
    }

    #[test]
    fn nineteen_datasets_with_paper_shapes() {
        let s = sim(16);
        let specs = s.dataset_specs();
        assert_eq!(specs.len(), 19);
        let f32s = specs.iter().filter(|s| s.etype == ElementType::F32).count();
        let u8s = specs.iter().filter(|s| s.etype == ElementType::U8).count();
        assert_eq!((f32s, u8s), (12, 7));
        let restarts = specs
            .iter()
            .filter(|s| s.amode == AccessMode::OverWrite)
            .count();
        assert_eq!(restarts, 6);
    }

    #[test]
    fn stepping_stays_finite_and_positive() {
        let mut s = sim(12);
        for _ in 0..30 {
            s.step();
        }
        assert!(s.temp.iter().all(|t| t.is_finite() && *t > 0.0));
        assert!(s.rho.iter().all(|r| r.is_finite() && *r > 0.0));
        assert!(s.ux.iter().all(|u| u.is_finite() && u.abs() <= 1.0));
    }

    #[test]
    fn mass_is_roughly_conserved() {
        let mut s = sim(16);
        let m0 = s.total_mass();
        for _ in 0..20 {
            s.step();
        }
        let m1 = s.total_mass();
        assert!(((m1 - m0) / m0).abs() < 0.05, "mass drifted {m0} -> {m1}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = sim(10);
        let mut b = sim(10);
        for _ in 0..5 {
            a.step();
            b.step();
        }
        assert_eq!(a.field_bytes("temp"), b.field_bytes("temp"));
        let mut c = Astro3d::new(Astro3dConfig {
            seed: 43,
            ..Astro3dConfig::small(10, 12)
        });
        for _ in 0..5 {
            c.step();
        }
        assert_ne!(a.field_bytes("temp"), c.field_bytes("temp"));
    }

    #[test]
    fn field_bytes_sizes_match_etype() {
        let s = sim(8);
        assert_eq!(s.field_bytes("temp").unwrap().len(), 8 * 8 * 8 * 4);
        assert_eq!(s.field_bytes("vr_temp").unwrap().len(), 8 * 8 * 8);
        assert!(s.field_bytes("nope").is_none());
    }

    #[test]
    fn vr_fields_use_full_dynamic_range() {
        let mut s = sim(12);
        for _ in 0..3 {
            s.step();
        }
        let vr = s.field_bytes("vr_temp").unwrap();
        assert!(vr.iter().any(|&b| b < 32));
        assert!(vr.iter().any(|&b| b > 223), "normalization spans 0..255");
    }

    #[test]
    fn fig9_plans_route_datasets() {
        let p = PlacementPlan::fig9(5);
        assert_eq!(p.hint_for("vr_temp"), LocationHint::LocalDisk);
        assert_eq!(p.hint_for("vr_press"), LocationHint::RemoteDisk);
        assert_eq!(p.hint_for("temp"), LocationHint::Disable);
        let p2 = PlacementPlan::fig9(2);
        assert_eq!(p2.hint_for("temp"), LocationHint::RemoteDisk);
        assert_eq!(p2.hint_for("rho"), LocationHint::RemoteTape);
    }

    #[test]
    #[should_panic(expected = "configurations 1–5")]
    fn fig9_bad_config_panics() {
        PlacementPlan::fig9(9);
    }

    #[test]
    fn table2_config_is_2_2_gb() {
        let c = Astro3dConfig::paper_table2();
        let gb = c.total_dump_bytes() as f64 / 1e9;
        assert!((2.0..2.5).contains(&gb), "got {gb} GB");
    }

    #[test]
    fn full_run_through_a_session() {
        let sys = MsrSystem::testbed(3);
        let mut cfg = Astro3dConfig::small(8, 6);
        cfg.plan = PlacementPlan::fig9(5);
        let mut sim = Astro3d::new(cfg);
        let mut session = sys
            .session()
            .app("astro3d")
            .user("xshen")
            .iterations(sim.cfg.iterations)
            .grid(sim.cfg.grid)
            .build()
            .unwrap();
        sim.run(&mut session).unwrap();
        let report = session.finalize().unwrap();
        // Config 5: only vr_temp and vr_press dumped (2 dumps each at 0, 6).
        let dumped: Vec<_> = report.datasets.iter().filter(|d| d.dumps > 0).collect();
        assert_eq!(dumped.len(), 2);
        assert!(dumped.iter().all(|d| d.dumps == 2));
    }
}
