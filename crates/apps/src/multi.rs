//! Deterministic multi-client workloads for the scheduler.
//!
//! The paper evaluates one application at a time; a shared deployment of
//! the testbed serves a *mix* — several Astro3D producers dumping while
//! Volren feeds render and post-processing readers pull dumps back. This
//! module declares that mix as [`SessionProgram`]s so the scheduler (and
//! the bench ledger) can admit the same fleet at any concurrency level
//! and compare against running the identical clients back-to-back through
//! the plain session API.

use msr_core::{CoreResult, DatasetSpec, FutureUse, MsrSystem};
use msr_meta::ElementType;
use msr_sched::{SchedReport, Scheduler, SessionProgram};
use msr_sim::SimDuration;

/// The client archetypes a shared testbed serves at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientKind {
    /// Astro3D-shaped producer: two float analysis variables archived /
    /// analysed every 6 iterations.
    Producer,
    /// Volren-shaped feed: one u8 visualization volume every 3 iterations.
    Renderer,
    /// Post-processing reader: dumps a float variable for analysis and
    /// reads its first dump back at the end of the run.
    Analyzer,
}

impl ClientKind {
    /// Round-robin mix: producer, renderer, analyzer, producer, …
    pub fn of(index: usize) -> ClientKind {
        match index % 3 {
            0 => ClientKind::Producer,
            1 => ClientKind::Renderer,
            _ => ClientKind::Analyzer,
        }
    }

    /// This client's program. `cube` is the per-dataset array side;
    /// `iterations` the main-loop length.
    pub fn program(self, index: usize, cube: u64, iterations: u32) -> SessionProgram {
        match self {
            ClientKind::Producer => SessionProgram::new(&format!("astro3d-{index:02}"))
                .user("sim")
                .iterations(iterations)
                .dataset(
                    DatasetSpec::builder("temp")
                        .element(ElementType::F32)
                        .cube(cube)
                        .frequency(6)
                        .future_use(FutureUse::Archive)
                        .build(),
                )
                .dataset(
                    DatasetSpec::builder("pres")
                        .element(ElementType::F32)
                        .cube(cube)
                        .frequency(6)
                        .future_use(FutureUse::Analysis)
                        .build(),
                ),
            ClientKind::Renderer => SessionProgram::new(&format!("volren-{index:02}"))
                .user("viz")
                .iterations(iterations)
                .dataset(
                    DatasetSpec::builder("vr_temp")
                        .element(ElementType::U8)
                        .cube(cube)
                        .frequency(3)
                        .future_use(FutureUse::Visualization)
                        .build(),
                ),
            ClientKind::Analyzer => SessionProgram::new(&format!("mse-{index:02}"))
                .user("post")
                .iterations(iterations)
                .dataset(
                    DatasetSpec::builder("rho")
                        .element(ElementType::F32)
                        .cube(cube)
                        .frequency(6)
                        .future_use(FutureUse::Analysis)
                        .build(),
                )
                .readback(true),
        }
    }
}

/// A deterministic fleet of `n` mixed clients.
pub fn client_fleet(n: usize, cube: u64, iterations: u32) -> Vec<SessionProgram> {
    (0..n)
        .map(|i| ClientKind::of(i).program(i, cube, iterations))
        .collect()
}

/// The tape-heavy consumer fleet the prefetcher is measured on: `n`
/// archival producers that each dump one float variable every 6
/// iterations (Archive future-use, so placement prefers tape) and read
/// their three earliest dumps back at the end of the run as standalone
/// read chains. While one session's writes hold the tape foreground
/// stream, every *other* session's consumer reads are idle queue tail —
/// exactly the window a prediction-driven prefetcher can fill.
pub fn consumer_fleet(n: usize, cube: u64, iterations: u32) -> Vec<SessionProgram> {
    (0..n)
        .map(|i| {
            SessionProgram::new(&format!("archive-{i:02}"))
                .user("post")
                .iterations(iterations)
                .dataset(
                    DatasetSpec::builder("hist")
                        .element(ElementType::F32)
                        .cube(cube)
                        .frequency(6)
                        .future_use(FutureUse::Archive)
                        .build(),
                )
                .readbacks(3)
        })
        .collect()
}

/// A compact mixed fleet for fleet-size scaling runs (100 / 1k / 10k
/// sessions): the same producer/renderer/analyzer rotation as
/// [`client_fleet`], but at 8³ cubes over 12 iterations so per-session
/// data stays small (~2 KB payloads) and the measured cost is the
/// dispatcher itself, not payload memcpys. At these sizes a 10k-session
/// drain holds every admitted payload in a few hundred MB — the scale the
/// discrete-event scheduler's O(log resources + batch) dispatch step
/// exists for, where the retired round loop's O(sessions × resources)
/// walk was impractical.
pub fn scaling_fleet(n: usize) -> Vec<SessionProgram> {
    client_fleet(n, 8, 12)
}

/// An Astro3D-style checkpoint producer: one float `chk` variable dumped
/// every 3 iterations, pinned to local disk for fast restart. Each dump
/// is a fresh file (`Create`), so a long campaign accumulates an aging
/// history of snapshots — exactly what a lifecycle engine's retention and
/// demotion passes exist to thin. The workload the `BENCH_lifecycle`
/// ledger runs in epochs.
pub fn checkpoint_producer(index: usize, cube: u64, iterations: u32) -> SessionProgram {
    SessionProgram::new(&format!("ckpt-{index:02}"))
        .user("sim")
        .iterations(iterations)
        .dataset(
            DatasetSpec::builder("chk")
                .element(ElementType::F32)
                .cube(cube)
                .frequency(3)
                .hint(msr_core::LocationHint::LocalDisk)
                .future_use(FutureUse::Checkpoint)
                .build(),
        )
}

/// A deterministic fleet of `n` checkpoint producers.
pub fn checkpoint_fleet(n: usize, cube: u64, iterations: u32) -> Vec<SessionProgram> {
    (0..n)
        .map(|i| checkpoint_producer(i, cube, iterations))
        .collect()
}

/// A WAN-bound checkpoint producer: the same every-3-iterations `chk`
/// dumps as [`checkpoint_producer`], but pinned to the remote disk and —
/// when `chunked` — ingested through the content-addressed chunk plane
/// (CDC boundaries, LZ-style compression). Successive dumps share most of
/// their bytes, so the chunked variant ships only each iteration's churn
/// window across the WAN; the raw variant re-ships every byte. The pair
/// the `BENCH_dedup` ledger compares.
pub fn dedup_producer(index: usize, cube: u64, iterations: u32, chunked: bool) -> SessionProgram {
    let mut spec = DatasetSpec::builder("chk")
        .element(ElementType::F32)
        .cube(cube)
        .frequency(3)
        .hint(msr_core::LocationHint::RemoteDisk)
        .future_use(FutureUse::Checkpoint);
    if chunked {
        spec = spec
            .chunked(msr_core::ChunkPolicy::cdc(8))
            .compression(msr_core::Codec::Lz4Like(1));
    }
    SessionProgram::new(&format!("ckpt-{index:02}"))
        .user("sim")
        .iterations(iterations)
        .dataset(spec.build())
}

/// A deterministic fleet of `n` WAN-bound checkpoint producers, raw or
/// chunked (see [`dedup_producer`]).
pub fn dedup_fleet(n: usize, cube: u64, iterations: u32, chunked: bool) -> Vec<SessionProgram> {
    (0..n)
        .map(|i| dedup_producer(i, cube, iterations, chunked))
        .collect()
}

/// The latency-sensitive tenant of the antagonist mix: `n` small-dump
/// clients (u8 cubes, every iteration) pinned to local disk, tagged
/// `"quiet"`. The tenant whose tail latency the overload machinery is
/// judged on.
pub fn quiet_fleet(n: usize, cube: u64, iterations: u32) -> Vec<SessionProgram> {
    (0..n)
        .map(|i| {
            SessionProgram::new(&format!("quiet-{i:02}"))
                .user("svc")
                .iterations(iterations)
                .dataset(
                    DatasetSpec::builder("q")
                        .element(ElementType::U8)
                        .cube(cube)
                        .frequency(1)
                        .hint(msr_core::LocationHint::LocalDisk)
                        .future_use(FutureUse::Visualization)
                        .build(),
                )
                .tenant("quiet")
        })
        .collect()
}

/// The antagonist tenant: `n` heavy producers (float cubes, every
/// iteration) aimed at the *same* local disk the quiet tenant lives on,
/// tagged `"noisy"`. Unprotected, this tenant's backlog grows the quiet
/// tenant's queue wait without bound.
pub fn noisy_fleet(n: usize, cube: u64, iterations: u32) -> Vec<SessionProgram> {
    (0..n)
        .map(|i| {
            SessionProgram::new(&format!("noisy-{i:02}"))
                .user("bulk")
                .iterations(iterations)
                .dataset(
                    DatasetSpec::builder("n")
                        .element(ElementType::F32)
                        .cube(cube)
                        .frequency(1)
                        .hint(msr_core::LocationHint::LocalDisk)
                        .future_use(FutureUse::Analysis)
                        .build(),
                )
                .tenant("noisy")
        })
        .collect()
}

/// The best-effort tenant: `n` light analyzers (one dump every 6
/// iterations) on the same contended local disk, tagged `"batch"`. Happy
/// to wait — its overload policy defers rather than sheds, so its
/// programs park behind the backlog and are admitted as the drain makes
/// room.
pub fn batch_fleet(n: usize, cube: u64, iterations: u32) -> Vec<SessionProgram> {
    (0..n)
        .map(|i| {
            SessionProgram::new(&format!("batch-{i:02}"))
                .user("post")
                .iterations(iterations)
                .dataset(
                    DatasetSpec::builder("b")
                        .element(ElementType::F32)
                        .cube(cube)
                        .frequency(6)
                        .hint(msr_core::LocationHint::LocalDisk)
                        .future_use(FutureUse::Analysis)
                        .build(),
                )
                .tenant("batch")
        })
        .collect()
}

/// Drop every program's tenant tag: the unprotected baseline, where the
/// whole fleet shares the default tenant's single FIFO lane and no
/// quota, SLO or weight applies.
pub fn strip_tenants(mut programs: Vec<SessionProgram>) -> Vec<SessionProgram> {
    for p in &mut programs {
        p.tenant = None;
    }
    programs
}

/// Register the three antagonist tenants with the protection profile the
/// overload bench and acceptance tests use: `quiet` gets an 8× dispatch
/// weight; `noisy` gets a hard cap of `noisy_cap` queued requests (work
/// past the cap is shed); `batch` gets a `batch_slo` admission SLO with
/// a defer-not-shed overload policy.
pub fn register_antagonist_tenants(sys: &MsrSystem, noisy_cap: usize, batch_slo: SimDuration) {
    sys.tenants
        .register(msr_core::Tenant::new("quiet").with_weight(8.0));
    sys.tenants.register(
        msr_core::Tenant::new("noisy").with_quota(msr_core::TenantQuota {
            max_queued_requests: Some(noisy_cap),
            ..msr_core::TenantQuota::default()
        }),
    );
    sys.tenants.register(
        msr_core::Tenant::new("batch")
            .with_slo(batch_slo)
            .with_overload(msr_core::OverloadPolicy::Defer {
                max_deferred: 8,
                ttl: SimDuration::from_secs(1e9),
            }),
    );
}

/// Admit every program into one scheduler on `sys` and drain the queues,
/// tolerating typed admission sheds (`Rejected` / `QuotaExceeded` — they
/// are counted on the shedding tenant's report row). Any other admission
/// error still aborts.
pub fn run_overloaded(sys: &MsrSystem, programs: Vec<SessionProgram>) -> CoreResult<SchedReport> {
    let mut sched = Scheduler::new(sys);
    for p in programs {
        match sched.admit(p) {
            Ok(_) => {}
            Err(msr_core::CoreError::Rejected { .. })
            | Err(msr_core::CoreError::QuotaExceeded { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    sched.run()
}

/// Admit every program into one scheduler on `sys` and drain the queues.
pub fn run_concurrent(sys: &MsrSystem, programs: Vec<SessionProgram>) -> CoreResult<SchedReport> {
    let mut sched = Scheduler::new(sys);
    for p in programs {
        sched.admit(p)?;
    }
    sched.run()
}

/// [`run_concurrent`] with prediction-driven read-ahead forced on or off,
/// independent of `MSR_PREFETCH`.
pub fn run_concurrent_prefetch(
    sys: &MsrSystem,
    programs: Vec<SessionProgram>,
    prefetch: bool,
) -> CoreResult<SchedReport> {
    let mut sched = Scheduler::new(sys).with_prefetch(prefetch);
    for p in programs {
        sched.admit(p)?;
    }
    sched.run()
}

/// The baseline the scheduler is measured against: the same clients run
/// one after another through the plain session API (no queues, no
/// overlap), returning total virtual time including readbacks.
pub fn run_sequential(sys: &MsrSystem, programs: &[SessionProgram]) -> CoreResult<SimDuration> {
    let t0 = sys.clock.now();
    for p in programs {
        let mut s = sys
            .session()
            .app(&p.app)
            .user(&p.user)
            .iterations(p.iterations)
            .grid(p.grid)
            .build()?;
        let handles: Vec<_> = p
            .datasets
            .iter()
            .map(|d| s.open(d.clone()).map(|h| (h, d.clone())))
            .collect::<CoreResult<_>>()?;
        for iter in 0..=p.iterations {
            for (h, d) in &handles {
                if s.dumps_at(*h, iter) {
                    let data =
                        msr_sched::program::payload(0, &d.name, iter, d.snapshot_bytes() as usize);
                    s.write_iteration(*h, iter, &data)?;
                }
            }
        }
        if p.readback {
            for (h, _) in &handles {
                s.read_iteration(*h, 0)?;
            }
        }
        s.finalize()?;
    }
    Ok(sys.clock.now().since(t0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_mixed() {
        let a = client_fleet(6, 16, 12);
        let b = client_fleet(6, 16, 12);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app, y.app);
            assert_eq!(x.datasets.len(), y.datasets.len());
        }
        assert!(a[0].app.starts_with("astro3d"));
        assert!(a[1].app.starts_with("volren"));
        assert!(a[2].app.starts_with("mse"));
        assert!(a[2].readback);
    }

    #[test]
    fn checkpoint_fleet_lands_on_local_disk_and_accumulates_history() {
        let sys = MsrSystem::testbed(11);
        let report = run_concurrent(&sys, checkpoint_fleet(2, 8, 9)).unwrap();
        assert!(report.sessions.iter().all(|s| s.errors.is_empty()));
        for s in &report.sessions {
            assert_eq!(
                s.placements["chk"],
                msr_storage::StorageKind::LocalDisk,
                "checkpoints pin to local disk"
            );
            // 9 iterations at frequency 3: dumps at 0, 3, 6, 9.
            assert_eq!(s.requests, 4);
        }
        // The recency hooks recorded every dump in the catalog.
        let mut catalog = sys.catalog.lock();
        for d in catalog.all_datasets() {
            let dumps = catalog.dumps_of(d.id);
            assert_eq!(dumps.len(), 4, "one DumpRec per snapshot");
        }
    }

    #[test]
    fn concurrent_fleet_beats_sequential_fleet() {
        let programs = client_fleet(4, 8, 12);
        let seq_sys = MsrSystem::testbed(5);
        let sequential = run_sequential(&seq_sys, &programs).unwrap();
        let sys = MsrSystem::testbed(5);
        let report = run_concurrent(&sys, programs).unwrap();
        assert!(report.sessions.iter().all(|s| s.errors.is_empty()));
        assert!(
            report.makespan < sequential,
            "concurrent {} vs sequential {}",
            report.makespan,
            sequential
        );
    }
}
