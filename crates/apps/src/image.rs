//! Grayscale images and the PGM viewer format.
//!
//! The environment's "image viewer" tool consumes the 2-D images Volren
//! produces; binary PGM (P5) keeps them inspectable with stock viewers.

use serde::{Deserialize, Serialize};

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major pixel data, `height × width` bytes.
    pub pixels: Vec<u8>,
}

impl Image {
    /// A black image.
    pub fn new(width: u32, height: u32) -> Self {
        Image {
            width,
            height,
            pixels: vec![0; (width * height) as usize],
        }
    }

    /// Pixel accessor.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        self.pixels[(y * self.width + x) as usize]
    }

    /// Pixel mutator.
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        self.pixels[(y * self.width + x) as usize] = v;
    }

    /// Encode as binary PGM (P5).
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Decode a binary PGM (P5) produced by [`Image::to_pgm`].
    pub fn from_pgm(bytes: &[u8]) -> Option<Image> {
        let header_end = bytes
            .windows(1)
            .enumerate()
            .filter(|(_, w)| w[0] == b'\n')
            .map(|(i, _)| i)
            .nth(2)?;
        let header = std::str::from_utf8(&bytes[..header_end]).ok()?;
        let mut lines = header.lines();
        if lines.next()? != "P5" {
            return None;
        }
        let mut dims = lines.next()?.split_whitespace();
        let width: u32 = dims.next()?.parse().ok()?;
        let height: u32 = dims.next()?.parse().ok()?;
        if lines.next()? != "255" {
            return None;
        }
        let pixels = bytes.get(header_end + 1..)?.to_vec();
        if pixels.len() != (width * height) as usize {
            return None;
        }
        Some(Image {
            width,
            height,
            pixels,
        })
    }

    /// Mean pixel intensity.
    pub fn mean(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| f64::from(p)).sum::<f64>() / self.pixels.len() as f64
    }

    /// (min, max) intensities.
    pub fn min_max(&self) -> (u8, u8) {
        let mut lo = u8::MAX;
        let mut hi = 0;
        for &p in &self.pixels {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }

    /// 16-bin intensity histogram.
    pub fn histogram(&self) -> [u64; 16] {
        let mut h = [0u64; 16];
        for &p in &self.pixels {
            h[(p >> 4) as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, ((x + y) % 256) as u8);
            }
        }
        img
    }

    #[test]
    fn pgm_roundtrip() {
        let img = gradient(17, 9);
        let back = Image::from_pgm(&img.to_pgm()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn pgm_rejects_garbage() {
        assert!(Image::from_pgm(b"not a pgm").is_none());
        assert!(Image::from_pgm(b"P5\n2 2\n255\nabc").is_none(), "truncated");
        assert!(Image::from_pgm(b"P6\n1 1\n255\nx").is_none(), "wrong magic");
    }

    #[test]
    fn stats() {
        let img = gradient(4, 4);
        assert_eq!(img.min_max(), (0, 6));
        assert!((img.mean() - 3.0).abs() < 1e-12);
        let h = img.histogram();
        assert_eq!(h.iter().sum::<u64>(), 16);
        assert_eq!(h[0], 16, "all gradient values < 16");
    }

    #[test]
    fn get_set() {
        let mut img = Image::new(3, 2);
        img.set(2, 1, 77);
        assert_eq!(img.get(2, 1), 77);
        assert_eq!(img.get(0, 0), 0);
    }
}
