//! Deterministic synthetic workload data for tests and benches.

use msr_sim::stream_rng;
use rand::Rng;

/// A cubic u8 volume of side `n`: a few seeded Gaussian blobs over noise,
/// resembling Astro3D's `vr_*` fields without running the simulation.
pub fn synthetic_volume(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = stream_rng(seed, "synthetic-volume");
    let blobs: Vec<(f32, f32, f32, f32)> = (0..4)
        .map(|_| {
            (
                rng.random_range(0.0..n as f32),
                rng.random_range(0.0..n as f32),
                rng.random_range(0.0..n as f32),
                rng.random_range(n as f32 / 8.0..n as f32 / 3.0),
            )
        })
        .collect();
    let mut out = Vec::with_capacity(n * n * n);
    for x in 0..n {
        for y in 0..n {
            for z in 0..n {
                let mut v = rng.random_range(0.0f32..20.0);
                for &(bx, by, bz, r) in &blobs {
                    let d2 =
                        (x as f32 - bx).powi(2) + (y as f32 - by).powi(2) + (z as f32 - bz).powi(2);
                    v += 235.0 * (-d2 / (r * r)).exp();
                }
                out.push(v.clamp(0.0, 255.0) as u8);
            }
        }
    }
    out
}

/// If `len` is a perfect cube, its side; the volume-shape check used by
/// consumers of u8 datasets.
pub fn u8_volume_dims(len: usize) -> Option<usize> {
    let n = (len as f64).cbrt().round() as usize;
    (n * n * n == len && n > 0).then_some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_is_deterministic_per_seed() {
        assert_eq!(synthetic_volume(8, 1), synthetic_volume(8, 1));
        assert_ne!(synthetic_volume(8, 1), synthetic_volume(8, 2));
    }

    #[test]
    fn volume_has_structure() {
        let v = synthetic_volume(16, 3);
        assert_eq!(v.len(), 16 * 16 * 16);
        let bright = v.iter().filter(|&&x| x > 200).count();
        let dark = v.iter().filter(|&&x| x < 30).count();
        assert!(bright > 0 && dark > 0, "blobs over background");
    }

    #[test]
    fn cube_detection() {
        assert_eq!(u8_volume_dims(27), Some(3));
        assert_eq!(u8_volume_dims(128 * 128 * 128), Some(128));
        assert_eq!(u8_volume_dims(26), None);
        assert_eq!(u8_volume_dims(0), None);
    }
}
