//! Volren — the parallel volume renderer.
//!
//! "It generates a 2D image by projection given a 3D input file … then
//! performs a parallel volume rendering algorithm to generate a
//! 2-dimensional image dataset for each iteration." Rays are cast along
//! the z axis, parallelized over image rows with rayon; two classic
//! projections are provided.

use crate::image::Image;
use crate::workload::u8_volume_dims;
use msr_core::{CoreError, CoreResult, MsrSystem};
use msr_meta::RunId;
use msr_runtime::{IoStrategy, ProcGrid, Superfile};
use msr_sim::SimDuration;
use msr_storage::SharedResource;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The projection used along each ray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RenderMode {
    /// Maximum-intensity projection.
    MaxIntensity,
    /// Front-to-back alpha compositing with a linear opacity transfer
    /// function.
    Compositing,
}

/// Render a cubic u8 volume of side `n` (row-major `[x][y][z]`) into an
/// `n × n` image by casting rays along z.
///
/// # Panics
/// Panics when `volume.len() != n³`.
pub fn render(volume: &[u8], n: usize, mode: RenderMode) -> Image {
    assert_eq!(volume.len(), n * n * n, "volume must be n^3 bytes");
    let mut img = Image::new(n as u32, n as u32);
    img.pixels
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(x, row)| {
            for (y, px) in row.iter_mut().enumerate() {
                let ray = &volume[(x * n + y) * n..(x * n + y) * n + n];
                *px = match mode {
                    RenderMode::MaxIntensity => ray.iter().copied().max().unwrap_or(0),
                    RenderMode::Compositing => {
                        // Front-to-back: C += (1-A)·α·c ; A += (1-A)·α.
                        let mut color = 0.0f32;
                        let mut alpha = 0.0f32;
                        for &s in ray {
                            let a = f32::from(s) / 255.0 * 0.06;
                            color += (1.0 - alpha) * a * f32::from(s);
                            alpha += (1.0 - alpha) * a;
                            if alpha > 0.99 {
                                break;
                            }
                        }
                        color.clamp(0.0, 255.0) as u8
                    }
                };
            }
        });
    img
}

/// Accounting of a whole Volren pass over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolrenReport {
    /// Iterations rendered.
    pub frames: u32,
    /// Virtual time spent reading the input volumes.
    pub read_time: SimDuration,
    /// Virtual time spent writing the output images.
    pub write_time: SimDuration,
    /// Total image bytes produced.
    pub image_bytes: u64,
}

/// Render every dump of `dataset` from `run` and store each frame as its
/// own small file under `prefix` on `resource` — the naive small-file
/// pattern the superfile experiment (Fig. 10(c)) compares against.
#[allow(clippy::too_many_arguments)]
pub fn run_volren(
    sys: &MsrSystem,
    run: RunId,
    dataset: &str,
    iterations: u32,
    frequency: u32,
    grid: ProcGrid,
    mode: RenderMode,
    resource: &SharedResource,
    prefix: &str,
) -> CoreResult<VolrenReport> {
    let mut report = VolrenReport {
        frames: 0,
        read_time: SimDuration::ZERO,
        write_time: SimDuration::ZERO,
        image_bytes: 0,
    };
    if frequency == 0 {
        return Ok(report);
    }
    let mut iter = 0;
    while iter <= iterations {
        let (bytes, io) = sys.read_dataset(run, dataset, iter, grid, IoStrategy::Collective)?;
        report.read_time += io.elapsed;
        let n = u8_volume_dims(bytes.len()).ok_or_else(|| {
            CoreError::DatasetDisabled(format!("{dataset}: not a cubic u8 volume"))
        })?;
        let img = render(&bytes, n, mode);
        let pgm = img.to_pgm();
        report.image_bytes += pgm.len() as u64;
        {
            let mut r = resource.lock();
            let path = format!("{prefix}/image.t{iter:05}.pgm");
            let open = r.open(&path, msr_storage::OpenMode::Create)?;
            report.write_time += open.time;
            report.write_time += r.write(open.value, &pgm)?.time;
            report.write_time += r.close(open.value)?.time;
        }
        report.frames += 1;
        iter += frequency;
    }
    Ok(report)
}

/// Superfile variant of [`run_volren`]: renders the same frames but appends
/// them to a container on `resource`, returning the report and the closed
/// superfile (index persisted).
#[allow(clippy::too_many_arguments)]
pub fn run_volren_superfile(
    sys: &MsrSystem,
    run: RunId,
    dataset: &str,
    iterations: u32,
    frequency: u32,
    grid: ProcGrid,
    mode: RenderMode,
    resource: &SharedResource,
    container_path: &str,
) -> CoreResult<(VolrenReport, Superfile)> {
    let mut report = VolrenReport {
        frames: 0,
        read_time: SimDuration::ZERO,
        write_time: SimDuration::ZERO,
        image_bytes: 0,
    };
    let (setup, mut sf) = Superfile::create(resource, container_path)?;
    report.write_time += setup;
    if frequency > 0 {
        let mut iter = 0;
        while iter <= iterations {
            let (bytes, io) = sys.read_dataset(run, dataset, iter, grid, IoStrategy::Collective)?;
            report.read_time += io.elapsed;
            let n = u8_volume_dims(bytes.len()).ok_or_else(|| {
                CoreError::DatasetDisabled(format!("{dataset}: not a cubic u8 volume"))
            })?;
            let img = render(&bytes, n, mode);
            let pgm = img.to_pgm();
            report.image_bytes += pgm.len() as u64;
            report.write_time +=
                sf.write_member(resource, &format!("image.t{iter:05}.pgm"), &pgm)?;
            report.frames += 1;
            iter += frequency;
        }
    }
    report.write_time += sf.close(resource)?;
    Ok((report, sf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthetic_volume;

    #[test]
    fn mip_finds_the_bright_voxel() {
        let n = 8;
        let mut vol = vec![10u8; n * n * n];
        vol[(3 * n + 4) * n + 5] = 250; // (x=3, y=4, z=5)
        let img = render(&vol, n, RenderMode::MaxIntensity);
        assert_eq!(img.get(4, 3), 250, "image is (x=row, y=col)");
        assert_eq!(img.get(0, 0), 10);
    }

    #[test]
    fn compositing_monotone_in_density() {
        let n = 8;
        let dim = vec![20u8; n * n * n];
        let bright = vec![200u8; n * n * n];
        let a = render(&dim, n, RenderMode::Compositing);
        let b = render(&bright, n, RenderMode::Compositing);
        assert!(b.mean() > a.mean());
    }

    #[test]
    fn render_is_deterministic() {
        let vol = synthetic_volume(16, 9);
        let a = render(&vol, 16, RenderMode::Compositing);
        let b = render(&vol, 16, RenderMode::Compositing);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "n^3")]
    fn wrong_volume_size_panics() {
        render(&[0u8; 10], 3, RenderMode::MaxIntensity);
    }

    #[test]
    fn empty_ray_is_black() {
        let img = render(&[0u8; 27], 3, RenderMode::Compositing);
        assert_eq!(img.min_max(), (0, 0));
    }
}
