//! Antagonist-fleet acceptance: the multi-tenant overload machinery must
//! actually protect the quiet tenant.
//!
//! Three runs of the *same* interleaved workload:
//!
//! 1. **solo** — the quiet tenant alone: its intrinsic tail latency.
//! 2. **unprotected** — quiet + noisy + batch with tenant tags stripped:
//!    one shared FIFO lane, no quotas, no weights. The noisy tenant's
//!    backlog inflates the quiet tenant's p99 queue wait far past solo.
//! 3. **protected** — the same fleet tagged, with the antagonist tenant
//!    profile registered (quiet 8× weight, noisy request-capped, batch
//!    defer-on-SLO). The quiet tenant's p99 must stay within 1.25× of
//!    solo — the bound `BENCH_tenant.json` publishes.
//!
//! Run at both worker-pool shapes: the protected drain must be bitwise
//! identical at `MSR_THREADS`=1 and a wide pool.

use msr_apps::multi::{
    batch_fleet, noisy_fleet, quiet_fleet, register_antagonist_tenants, run_overloaded,
    strip_tenants,
};
use msr_core::MsrSystem;
use msr_sched::{SchedReport, SessionProgram, TenantReport};
use msr_sim::SimDuration;

const NOISY_CAP: usize = 100;

fn batch_slo() -> SimDuration {
    SimDuration::from_secs(5.0)
}

/// The contended fleet, in admission order: quiet, then noisy (one of
/// them carrying an unmeetable deadline), then batch.
fn fleet() -> Vec<SessionProgram> {
    let mut programs = quiet_fleet(4, 16, 24);
    let mut noisy = noisy_fleet(6, 32, 23);
    // One antagonist session demands the impossible: cancelled mid-drain
    // by deadline enforcement rather than draining at everyone's expense.
    // It must be admitted to be cancelled, so it goes first — the request
    // cap sheds later antagonists instead.
    noisy[0] = noisy[0].clone().deadline(SimDuration::from_secs(1e-6));
    programs.extend(noisy);
    programs.extend(batch_fleet(2, 16, 24));
    programs
}

fn quiet_row(report: &SchedReport) -> &TenantReport {
    report
        .tenants
        .iter()
        .find(|t| t.tenant == "quiet")
        .expect("quiet tenant row")
}

/// Worst per-session p99 wait of the quiet apps, regardless of how the
/// run was tagged (the unprotected run files everything under the
/// default tenant).
fn quiet_p99(report: &SchedReport) -> f64 {
    report
        .sessions
        .iter()
        .filter(|s| s.app.starts_with("quiet"))
        .map(|s| s.wait_p99.as_secs())
        .fold(0.0, f64::max)
}

#[test]
fn quotas_and_wfq_hold_the_quiet_tenants_tail() {
    // 1. Solo: the quiet tenant's intrinsic p99.
    let sys = MsrSystem::testbed(900);
    let solo = run_overloaded(&sys, quiet_fleet(4, 16, 24)).unwrap();
    let solo_p99 = quiet_p99(&solo);
    assert!(solo_p99 > 0.0, "solo fleet must contend with itself");

    // 2. Unprotected: same fleet, tags stripped, one FIFO lane.
    let sys = MsrSystem::testbed(900);
    let fifo = run_overloaded(&sys, strip_tenants(fleet())).unwrap();
    let fifo_p99 = quiet_p99(&fifo);
    assert!(
        fifo_p99 > 1.5 * solo_p99,
        "unprotected contention must visibly inflate the quiet tail: \
         {fifo_p99:.3}s vs solo {solo_p99:.3}s"
    );

    // 3. Protected: quotas + WFQ + admission control.
    let sys = MsrSystem::testbed(900);
    register_antagonist_tenants(&sys, NOISY_CAP, batch_slo());
    let protected = run_overloaded(&sys, fleet()).unwrap();
    let prot_p99 = quiet_p99(&protected);
    assert!(
        prot_p99 <= 1.25 * solo_p99,
        "protected quiet p99 must stay within 1.25x of solo: \
         {prot_p99:.3}s vs solo {solo_p99:.3}s (unprotected was {fifo_p99:.3}s)"
    );
    assert_eq!(
        quiet_p99(&protected),
        quiet_row(&protected).wait_p99.as_secs()
    );

    // The machinery visibly acted on the antagonists.
    let row = |name: &str| {
        protected
            .tenants
            .iter()
            .find(|t| t.tenant == name)
            .unwrap_or_else(|| panic!("{name} row"))
    };
    assert!(row("noisy").shed > 0, "capped antagonist must shed work");
    assert_eq!(row("noisy").cancelled, 1, "doomed deadline must cancel");
    assert!(row("batch").deferred > 0, "batch must park behind the SLO");
    assert_eq!(
        row("batch").sessions,
        2,
        "deferred batch programs must still run once the backlog clears"
    );
    // Every quiet session completed untouched by the load shedding.
    assert_eq!(quiet_row(&protected).sessions, 4);
    for s in protected.sessions.iter().filter(|s| s.tenant == "quiet") {
        assert!(s.errors.is_empty());
        assert!(s.cancelled.is_none());
    }
}

/// The protected antagonist drain is bitwise identical at both pool
/// shapes (a single-threaded and a wide worker pool).
#[test]
fn protected_drain_is_identical_at_both_pool_shapes() {
    let run = || {
        let sys = MsrSystem::testbed(901);
        register_antagonist_tenants(&sys, NOISY_CAP, batch_slo());
        run_overloaded(&sys, fleet()).unwrap()
    };
    let narrow = rayon::pool::with_threads(1, run);
    let wide = rayon::pool::with_threads(4, run);
    assert_eq!(
        narrow, wide,
        "protected drain must not depend on the worker-pool shape"
    );
}
