//! # msr-meta — the metadata catalog (MDMS)
//!
//! The paper keeps a "small" Postgres database at NWU holding *meta-data*:
//! which applications and users exist, which datasets each run produced,
//! where every dataset lives (storage resource type, path), how it is
//! partitioned across processors, and the performance samples that feed the
//! I/O performance predictor.
//!
//! This crate is the embedded stand-in: a typed, relational-style
//! [`Catalog`] with primary-key tables, foreign-key lookups, a small
//! [`filter`] expression language for ad-hoc queries, and JSON persistence
//! (the paper's Postgres is, for our purposes, a durable table store with
//! an embedded C API — the catalog exercises the same code paths:
//! dataset lookup by name, location attributes, perf-record retrieval).
//!
//! Metadata access is deliberately cheap (§3.2: "As meta-data access is
//! inexpensive, there is no need to provide a run-time library on top"); a
//! flat per-query cost models the campus round trip to NWU.

pub mod catalog;
pub mod error;
pub mod filter;
pub mod parse;
pub mod records;

pub use catalog::{Catalog, CatalogConfig};
pub use error::MetaError;
pub use filter::{Filter, Record, Value};
pub use parse::ParseError;
pub use records::{
    AccessMode, AppId, ApplicationRec, DatasetId, DatasetRec, DumpRec, DumpState, ElementType,
    Location, PerfSample, ResourceRec, RunId, RunRec, UserId, UserRec,
};

/// Convenience result alias for catalog operations.
pub type MetaResult<T> = Result<T, MetaError>;
