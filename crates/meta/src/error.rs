//! Catalog error type.

use std::fmt;

/// Failures surfaced by the metadata catalog.
#[derive(Debug)]
pub enum MetaError {
    /// Primary key or name not found in the referenced table.
    NotFound {
        /// Table name.
        table: &'static str,
        /// Key rendered for diagnostics.
        key: String,
    },
    /// A unique constraint (e.g. application name) was violated.
    Duplicate {
        /// Table name.
        table: &'static str,
        /// The conflicting key.
        key: String,
    },
    /// A foreign key referenced a missing row.
    ForeignKey {
        /// Referencing table.
        table: &'static str,
        /// The dangling reference.
        key: String,
    },
    /// Persistence I/O failed.
    Io(std::io::Error),
    /// Persistence (de)serialization failed.
    Serde(serde_json::Error),
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::NotFound { table, key } => write!(f, "{table}: no row with key {key}"),
            MetaError::Duplicate { table, key } => {
                write!(f, "{table}: duplicate key {key}")
            }
            MetaError::ForeignKey { table, key } => {
                write!(f, "{table}: dangling foreign key {key}")
            }
            MetaError::Io(e) => write!(f, "catalog I/O error: {e}"),
            MetaError::Serde(e) => write!(f, "catalog serialization error: {e}"),
        }
    }
}

impl std::error::Error for MetaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MetaError::Io(e) => Some(e),
            MetaError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MetaError {
    fn from(e: std::io::Error) -> Self {
        MetaError::Io(e)
    }
}

impl From<serde_json::Error> for MetaError {
    fn from(e: serde_json::Error) -> Self {
        MetaError::Serde(e)
    }
}
