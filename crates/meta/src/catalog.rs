//! The embedded catalog: typed tables with keys, queries and persistence.

use crate::error::MetaError;
use crate::filter::Filter;
use crate::records::{
    AppId, ApplicationRec, DatasetId, DatasetRec, DumpRec, DumpState, Location, PerfSample,
    ResourceRec, RunId, RunRec, UserId, UserRec,
};
use crate::MetaResult;
use msr_sim::SimDuration;
use msr_storage::{FixedCosts, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;

/// Catalog tuning knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Virtual cost charged per catalog query — the campus round trip to
    /// the NWU database. Metadata access is cheap by design (§3.2).
    pub query_cost: SimDuration,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            query_cost: SimDuration::from_millis(4.0),
        }
    }
}

fn perf_key(resource: &str, op: OpKind) -> String {
    format!("{resource}/{op}")
}

/// Derived lookup tables over the row vectors. Never serialized — rebuilt
/// wholesale after deserialization — and maintained inline on insert, so
/// the hot-path lookups (`find_dataset` on every open, the free `note_*`
/// recency hooks on every served request) are O(1) instead of scanning a
/// table that grows with every admitted session. At 10k concurrent
/// sessions the scans were quadratic in the drain length.
#[derive(Debug, Default)]
struct Indexes {
    /// Application name → row position.
    apps: HashMap<String, usize>,
    /// User name → row position.
    users: HashMap<String, usize>,
    /// `(run, dataset name)` → row position.
    datasets: HashMap<(u64, String), usize>,
    /// `(dataset, iteration)` → dump row position.
    dumps: HashMap<(u64, u32), usize>,
}

/// The metadata database: applications, users, runs, datasets, storage
/// resources and the performance tables that feed the predictor.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Catalog {
    /// Tuning knobs.
    pub config: CatalogConfig,
    apps: Vec<ApplicationRec>,
    users: Vec<UserRec>,
    runs: Vec<RunRec>,
    datasets: Vec<DatasetRec>,
    resources: Vec<ResourceRec>,
    #[serde(default)]
    dumps: Vec<DumpRec>,
    perf: BTreeMap<String, Vec<PerfSample>>,
    perf_fixed: BTreeMap<String, FixedCosts>,
    #[serde(skip)]
    queries: u64,
    #[serde(skip)]
    index: Indexes,
}

impl Catalog {
    /// An empty catalog with default config.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Number of queries served (observability; each costs
    /// [`CatalogConfig::query_cost`] of virtual time to the caller).
    pub fn query_count(&self) -> u64 {
        self.queries
    }

    fn count_query(&mut self) {
        self.queries += 1;
    }

    /// Rebuild every derived index from the row vectors (after
    /// deserialization, or after a removal shifts row positions).
    fn rebuild_indexes(&mut self) {
        self.index = Indexes::default();
        for (i, a) in self.apps.iter().enumerate() {
            self.index.apps.insert(a.name.clone(), i);
        }
        for (i, u) in self.users.iter().enumerate() {
            self.index.users.insert(u.name.clone(), i);
        }
        for (i, d) in self.datasets.iter().enumerate() {
            self.index.datasets.insert((d.run.0, d.name.clone()), i);
        }
        self.rebuild_dump_index();
    }

    fn rebuild_dump_index(&mut self) {
        self.index.dumps.clear();
        for (i, x) in self.dumps.iter().enumerate() {
            self.index.dumps.insert((x.dataset.0, x.iter), i);
        }
    }

    // ---- applications ----------------------------------------------------

    /// Register an application; names are unique.
    pub fn create_app(&mut self, name: &str, description: &str) -> MetaResult<AppId> {
        if self.index.apps.contains_key(name) {
            return Err(MetaError::Duplicate {
                table: "applications",
                key: name.to_owned(),
            });
        }
        let id = AppId(self.apps.len() as u64);
        self.index.apps.insert(name.to_owned(), self.apps.len());
        self.apps.push(ApplicationRec {
            id,
            name: name.to_owned(),
            description: description.to_owned(),
        });
        Ok(id)
    }

    /// Look up an application by name.
    pub fn app_by_name(&mut self, name: &str) -> MetaResult<&ApplicationRec> {
        self.count_query();
        match self.index.apps.get(name) {
            Some(&i) => Ok(&self.apps[i]),
            None => Err(MetaError::NotFound {
                table: "applications",
                key: name.to_owned(),
            }),
        }
    }

    // ---- users -----------------------------------------------------------

    /// Register a user; names are unique.
    pub fn create_user(&mut self, name: &str, site: &str) -> MetaResult<UserId> {
        if self.index.users.contains_key(name) {
            return Err(MetaError::Duplicate {
                table: "users",
                key: name.to_owned(),
            });
        }
        let id = UserId(self.users.len() as u64);
        self.index.users.insert(name.to_owned(), self.users.len());
        self.users.push(UserRec {
            id,
            name: name.to_owned(),
            site: site.to_owned(),
        });
        Ok(id)
    }

    /// Look up a user by name.
    pub fn user_by_name(&mut self, name: &str) -> MetaResult<&UserRec> {
        self.count_query();
        match self.index.users.get(name) {
            Some(&i) => Ok(&self.users[i]),
            None => Err(MetaError::NotFound {
                table: "users",
                key: name.to_owned(),
            }),
        }
    }

    // ---- runs ------------------------------------------------------------

    /// Create a run of `app` by `user`.
    pub fn create_run(
        &mut self,
        app: AppId,
        user: UserId,
        iterations: u32,
        tag: &str,
    ) -> MetaResult<RunId> {
        if self.apps.get(app.0 as usize).is_none() {
            return Err(MetaError::ForeignKey {
                table: "runs",
                key: app.to_string(),
            });
        }
        if self.users.get(user.0 as usize).is_none() {
            return Err(MetaError::ForeignKey {
                table: "runs",
                key: user.to_string(),
            });
        }
        let id = RunId(self.runs.len() as u64);
        self.runs.push(RunRec {
            id,
            app,
            user,
            iterations,
            tag: tag.to_owned(),
        });
        Ok(id)
    }

    /// Fetch a run.
    pub fn run(&mut self, id: RunId) -> MetaResult<&RunRec> {
        self.count_query();
        self.runs.get(id.0 as usize).ok_or(MetaError::NotFound {
            table: "runs",
            key: id.to_string(),
        })
    }

    // ---- datasets ----------------------------------------------------------

    /// Register a dataset for a run; `(run, name)` is unique.
    pub fn add_dataset(&mut self, mut rec: DatasetRec) -> MetaResult<DatasetId> {
        if self.runs.get(rec.run.0 as usize).is_none() {
            return Err(MetaError::ForeignKey {
                table: "datasets",
                key: rec.run.to_string(),
            });
        }
        let key = (rec.run.0, rec.name.clone());
        if self.index.datasets.contains_key(&key) {
            return Err(MetaError::Duplicate {
                table: "datasets",
                key: format!("{}/{}", rec.run, rec.name),
            });
        }
        let id = DatasetId(self.datasets.len() as u64);
        rec.id = id;
        self.index.datasets.insert(key, self.datasets.len());
        self.datasets.push(rec);
        Ok(id)
    }

    /// Fetch a dataset by primary key.
    pub fn dataset(&mut self, id: DatasetId) -> MetaResult<&DatasetRec> {
        self.count_query();
        self.datasets.get(id.0 as usize).ok_or(MetaError::NotFound {
            table: "datasets",
            key: id.to_string(),
        })
    }

    /// Find a dataset by `(run, name)` — the lookup the API layer performs
    /// on every open.
    pub fn find_dataset(&mut self, run: RunId, name: &str) -> MetaResult<&DatasetRec> {
        self.count_query();
        match self.index.datasets.get(&(run.0, name.to_owned())) {
            Some(&i) => Ok(&self.datasets[i]),
            None => Err(MetaError::NotFound {
                table: "datasets",
                key: format!("{run}/{name}"),
            }),
        }
    }

    /// All datasets of a run.
    pub fn datasets_for_run(&mut self, run: RunId) -> Vec<DatasetRec> {
        self.count_query();
        self.datasets
            .iter()
            .filter(|d| d.run == run)
            .cloned()
            .collect()
    }

    /// Ad-hoc dataset query.
    pub fn query_datasets(&mut self, filter: &Filter) -> Vec<DatasetRec> {
        self.count_query();
        self.datasets
            .iter()
            .filter(|d| filter.eval(*d))
            .cloned()
            .collect()
    }

    /// Update a dataset's resolved location (placement decisions are
    /// recorded so post-processing tools can find the data).
    pub fn set_dataset_location(&mut self, id: DatasetId, loc: Location) -> MetaResult<()> {
        let d = self
            .datasets
            .get_mut(id.0 as usize)
            .ok_or(MetaError::NotFound {
                table: "datasets",
                key: id.to_string(),
            })?;
        d.location = loc;
        Ok(())
    }

    /// Record the predictor's estimate for a dataset (VIRTUALTIME column).
    pub fn set_dataset_prediction(&mut self, id: DatasetId, secs: f64) -> MetaResult<()> {
        let d = self
            .datasets
            .get_mut(id.0 as usize)
            .ok_or(MetaError::NotFound {
                table: "datasets",
                key: id.to_string(),
            })?;
        d.predicted_secs = Some(secs);
        Ok(())
    }

    // ---- dumps & access recency --------------------------------------------
    //
    // The `note_*` hooks are deliberately *free*: they neither count as
    // catalog queries nor charge query cost, so recording recency leaves
    // every pre-lifecycle run's timing (and report) bitwise unchanged.

    /// Record (or refresh) a dump of `(run, name)` written at `at_secs`.
    /// Unknown datasets are ignored — recency is best-effort bookkeeping,
    /// never an error path.
    pub fn note_dump(&mut self, run: RunId, name: &str, iter: u32, at_secs: f64, bytes: u64) {
        let Some(&di) = self.index.datasets.get(&(run.0, name.to_owned())) else {
            return;
        };
        let d = &mut self.datasets[di];
        d.last_access_secs = d.last_access_secs.max(at_secs);
        d.heat += 1;
        let id = d.id;
        match self.index.dumps.get(&(id.0, iter)) {
            Some(&xi) => {
                let x = &mut self.dumps[xi];
                x.written_secs = at_secs;
                x.last_access_secs = x.last_access_secs.max(at_secs);
                x.bytes = bytes;
                x.state = DumpState::Resident;
            }
            None => {
                self.index.dumps.insert((id.0, iter), self.dumps.len());
                self.dumps.push(DumpRec {
                    dataset: id,
                    iter,
                    written_secs: at_secs,
                    bytes,
                    last_access_secs: at_secs,
                    reads: 0,
                    state: DumpState::Resident,
                });
            }
        }
    }

    /// Record a read of `(run, name)` (optionally of one dump) at `at_secs`.
    /// Free for the same reason as [`Catalog::note_dump`].
    pub fn note_access(&mut self, run: RunId, name: &str, iter: Option<u32>, at_secs: f64) {
        let Some(&di) = self.index.datasets.get(&(run.0, name.to_owned())) else {
            return;
        };
        let d = &mut self.datasets[di];
        d.last_access_secs = d.last_access_secs.max(at_secs);
        d.heat += 1;
        let id = d.id;
        if let Some(iter) = iter {
            if let Some(&xi) = self.index.dumps.get(&(id.0, iter)) {
                let x = &mut self.dumps[xi];
                x.last_access_secs = x.last_access_secs.max(at_secs);
                x.reads += 1;
            }
        }
    }

    /// All recorded dumps of a dataset, in iteration order.
    pub fn dumps_of(&mut self, id: DatasetId) -> Vec<DumpRec> {
        self.count_query();
        let mut v: Vec<DumpRec> = self
            .dumps
            .iter()
            .filter(|x| x.dataset == id)
            .cloned()
            .collect();
        v.sort_by_key(|x| x.iter);
        v
    }

    /// Drop the record of one dump (after its file is pruned from storage).
    /// Returns whether a row was removed.
    pub fn remove_dump(&mut self, id: DatasetId, iter: u32) -> bool {
        let before = self.dumps.len();
        self.dumps.retain(|x| !(x.dataset == id && x.iter == iter));
        let removed = self.dumps.len() != before;
        if removed {
            // Removal shifts later row positions; pruning is rare enough
            // that a wholesale rebuild beats keeping the rows unordered.
            self.rebuild_dump_index();
        }
        removed
    }

    /// Update the residency state of one dump. Returns whether it existed.
    pub fn set_dump_state(&mut self, id: DatasetId, iter: u32, state: DumpState) -> bool {
        match self.index.dumps.get(&(id.0, iter)) {
            Some(&xi) => {
                self.dumps[xi].state = state;
                true
            }
            None => false,
        }
    }

    /// Reset a dataset's heat counter (after the lifecycle engine acts on it).
    pub fn reset_heat(&mut self, id: DatasetId) {
        if let Some(d) = self.datasets.get_mut(id.0 as usize) {
            d.heat = 0;
        }
    }

    /// Every dataset row — the lifecycle engine's scan.
    pub fn all_datasets(&mut self) -> Vec<DatasetRec> {
        self.count_query();
        self.datasets.clone()
    }

    // ---- resources ---------------------------------------------------------

    /// Register a storage resource; names are unique (re-registration
    /// replaces the row, matching how an admin updates capacity).
    pub fn register_resource(&mut self, rec: ResourceRec) {
        if let Some(existing) = self.resources.iter_mut().find(|r| r.name == rec.name) {
            *existing = rec;
        } else {
            self.resources.push(rec);
        }
    }

    /// All registered resources.
    pub fn resources(&mut self) -> Vec<ResourceRec> {
        self.count_query();
        self.resources.clone()
    }

    // ---- performance tables -------------------------------------------------

    /// Replace the timing samples for `(resource, op)` — PTool's output.
    pub fn record_perf_samples(&mut self, resource: &str, op: OpKind, samples: Vec<PerfSample>) {
        self.perf.insert(perf_key(resource, op), samples);
    }

    /// Timing samples for `(resource, op)`.
    pub fn perf_samples(&mut self, resource: &str, op: OpKind) -> Option<Vec<PerfSample>> {
        self.count_query();
        self.perf.get(&perf_key(resource, op)).cloned()
    }

    /// Record the fixed-cost row (Table 1) for `(resource, op)`.
    pub fn record_fixed_costs(&mut self, resource: &str, op: OpKind, costs: FixedCosts) {
        self.perf_fixed.insert(perf_key(resource, op), costs);
    }

    /// Fixed-cost row for `(resource, op)`.
    pub fn fixed_costs(&mut self, resource: &str, op: OpKind) -> Option<FixedCosts> {
        self.count_query();
        self.perf_fixed.get(&perf_key(resource, op)).copied()
    }

    /// Resources with recorded performance data, in key order.
    pub fn perf_resources(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .perf
            .keys()
            .filter_map(|k| k.rsplit_once('/').map(|(r, _)| r.to_owned()))
            .collect();
        names.dedup();
        names
    }

    // ---- persistence ---------------------------------------------------------

    /// Serialize the whole catalog to a JSON string.
    pub fn to_json(&self) -> MetaResult<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Restore a catalog from JSON. The lookup indexes are not serialized;
    /// they are rebuilt here.
    pub fn from_json(s: &str) -> MetaResult<Catalog> {
        let mut c: Catalog = serde_json::from_str(s)?;
        c.rebuild_indexes();
        Ok(c)
    }

    /// Persist to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> MetaResult<()> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> MetaResult<Catalog> {
        Catalog::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{AccessMode, ElementType};
    use msr_storage::StorageKind;

    fn seed_catalog() -> (Catalog, RunId) {
        let mut c = Catalog::new();
        let app = c.create_app("astro3d", "hydro simulation").unwrap();
        let user = c.create_user("xshen", "NWU").unwrap();
        let run = c.create_run(app, user, 120, "128^3").unwrap();
        (c, run)
    }

    fn ds(run: RunId, name: &str) -> DatasetRec {
        DatasetRec {
            id: DatasetId(0),
            run,
            name: name.into(),
            amode: AccessMode::Create,
            etype: ElementType::F32,
            dims: vec![128, 128, 128],
            pattern: "BBB".into(),
            strategy: "collective".into(),
            location: Location::Stored(StorageKind::RemoteTape),
            frequency: 6,
            path: format!("astro3d/{name}"),
            predicted_secs: None,
            last_access_secs: 0.0,
            heat: 0,
        }
    }

    #[test]
    fn app_and_user_uniqueness() {
        let (mut c, _) = seed_catalog();
        assert!(matches!(
            c.create_app("astro3d", "again"),
            Err(MetaError::Duplicate { .. })
        ));
        assert!(matches!(
            c.create_user("xshen", "ANL"),
            Err(MetaError::Duplicate { .. })
        ));
        assert_eq!(c.app_by_name("astro3d").unwrap().name, "astro3d");
        assert!(matches!(
            c.app_by_name("volren"),
            Err(MetaError::NotFound { .. })
        ));
    }

    #[test]
    fn run_foreign_keys_checked() {
        let (mut c, _) = seed_catalog();
        let bad_app = AppId(99);
        let user = UserId(0);
        assert!(matches!(
            c.create_run(bad_app, user, 1, ""),
            Err(MetaError::ForeignKey { .. })
        ));
        assert!(matches!(
            c.create_run(AppId(0), UserId(99), 1, ""),
            Err(MetaError::ForeignKey { .. })
        ));
    }

    #[test]
    fn dataset_crud_and_lookup() {
        let (mut c, run) = seed_catalog();
        let id = c.add_dataset(ds(run, "temp")).unwrap();
        assert!(matches!(
            c.add_dataset(ds(run, "temp")),
            Err(MetaError::Duplicate { .. })
        ));
        assert_eq!(c.dataset(id).unwrap().name, "temp");
        assert_eq!(c.find_dataset(run, "temp").unwrap().id, id);
        assert!(matches!(
            c.find_dataset(run, "ghost"),
            Err(MetaError::NotFound { .. })
        ));
    }

    #[test]
    fn dataset_updates() {
        let (mut c, run) = seed_catalog();
        let id = c.add_dataset(ds(run, "temp")).unwrap();
        c.set_dataset_location(id, Location::Stored(StorageKind::RemoteDisk))
            .unwrap();
        c.set_dataset_prediction(id, 812.45).unwrap();
        let d = c.dataset(id).unwrap();
        assert_eq!(d.location, Location::Stored(StorageKind::RemoteDisk));
        assert_eq!(d.predicted_secs, Some(812.45));
    }

    #[test]
    fn query_datasets_with_filter() {
        let (mut c, run) = seed_catalog();
        for n in ["temp", "press", "vr_temp", "vr_press"] {
            c.add_dataset(ds(run, n)).unwrap();
        }
        let vr = c.query_datasets(&Filter::Contains("name".into(), "vr_".into()));
        assert_eq!(vr.len(), 2);
        let all = c.datasets_for_run(run);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn resource_registration_replaces() {
        let (mut c, _) = seed_catalog();
        c.register_resource(ResourceRec {
            name: "anl-local".into(),
            kind: StorageKind::LocalDisk,
            site: "ANL".into(),
            capacity: 100,
        });
        c.register_resource(ResourceRec {
            name: "anl-local".into(),
            kind: StorageKind::LocalDisk,
            site: "ANL".into(),
            capacity: 200,
        });
        let rs = c.resources();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].capacity, 200);
    }

    #[test]
    fn perf_tables_roundtrip() {
        let (mut c, _) = seed_catalog();
        let samples = vec![
            PerfSample {
                bytes: 1 << 20,
                transfer_secs: 3.5,
            },
            PerfSample {
                bytes: 1 << 22,
                transfer_secs: 14.2,
            },
        ];
        c.record_perf_samples("sdsc-disk", OpKind::Write, samples.clone());
        assert_eq!(c.perf_samples("sdsc-disk", OpKind::Write).unwrap(), samples);
        assert!(c.perf_samples("sdsc-disk", OpKind::Read).is_none());
        let fixed = FixedCosts {
            conn: SimDuration::from_secs(0.44),
            ..Default::default()
        };
        c.record_fixed_costs("sdsc-disk", OpKind::Write, fixed);
        assert_eq!(c.fixed_costs("sdsc-disk", OpKind::Write).unwrap(), fixed);
        assert_eq!(c.perf_resources(), vec!["sdsc-disk".to_owned()]);
    }

    #[test]
    fn persistence_roundtrip() {
        let (mut c, run) = seed_catalog();
        c.add_dataset(ds(run, "temp")).unwrap();
        c.record_fixed_costs("anl-local", OpKind::Read, FixedCosts::default());
        let json = c.to_json().unwrap();
        let mut back = Catalog::from_json(&json).unwrap();
        assert_eq!(back.find_dataset(run, "temp").unwrap().name, "temp");
        assert!(back.fixed_costs("anl-local", OpKind::Read).is_some());
        assert_eq!(back.query_count(), 2, "query counter is not persisted");
    }

    #[test]
    fn recency_hooks_are_free_and_tracked() {
        let (mut c, run) = seed_catalog();
        let id = c.add_dataset(ds(run, "temp")).unwrap();
        let before = c.query_count();
        c.note_dump(run, "temp", 0, 10.0, 1024);
        c.note_dump(run, "temp", 6, 20.0, 1024);
        c.note_access(run, "temp", Some(0), 30.0);
        c.note_access(run, "ghost", None, 99.0); // unknown: silently ignored
        assert_eq!(c.query_count(), before, "note_* never counts as a query");
        let d = c.dataset(id).unwrap();
        assert_eq!(d.last_access_secs, 30.0);
        assert_eq!(d.heat, 3);
        let dumps = c.dumps_of(id);
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].iter, 0);
        assert_eq!(dumps[0].reads, 1);
        assert_eq!(dumps[0].last_access_secs, 30.0);
        assert_eq!(dumps[1].reads, 0);
        c.reset_heat(id);
        assert_eq!(c.dataset(id).unwrap().heat, 0);
    }

    #[test]
    fn dump_state_and_removal() {
        let (mut c, run) = seed_catalog();
        let id = c.add_dataset(ds(run, "temp")).unwrap();
        c.note_dump(run, "temp", 0, 1.0, 64);
        c.note_dump(run, "temp", 6, 2.0, 64);
        assert!(c.set_dump_state(id, 6, DumpState::Vaulted));
        assert!(!c.set_dump_state(id, 12, DumpState::Vaulted));
        assert_eq!(c.dumps_of(id)[1].state, DumpState::Vaulted);
        // Rewriting a vaulted dump makes it resident again.
        c.note_dump(run, "temp", 6, 3.0, 64);
        assert_eq!(c.dumps_of(id)[1].state, DumpState::Resident);
        assert!(c.remove_dump(id, 0));
        assert!(!c.remove_dump(id, 0));
        assert_eq!(c.dumps_of(id).len(), 1);
    }

    #[test]
    fn dumps_survive_persistence() {
        let (mut c, run) = seed_catalog();
        let id = c.add_dataset(ds(run, "temp")).unwrap();
        c.note_dump(run, "temp", 0, 5.0, 256);
        let json = c.to_json().unwrap();
        let mut back = Catalog::from_json(&json).unwrap();
        assert_eq!(back.dumps_of(id), c.dumps_of(id));
    }

    #[test]
    fn query_counter_increments() {
        let (mut c, run) = seed_catalog();
        let before = c.query_count();
        let _ = c.datasets_for_run(run);
        let _ = c.resources();
        assert_eq!(c.query_count(), before + 2);
        assert!(c.config.query_cost > SimDuration::ZERO);
    }
}
