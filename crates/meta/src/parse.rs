//! A small WHERE-clause language for catalog queries.
//!
//! The paper's metadata lives in Postgres and is queried with SQL; the
//! embedded catalog accepts the same flavour of predicate as text:
//!
//! ```
//! use msr_meta::Filter;
//! let f = Filter::parse_str(
//!     "name CONTAINS 'vr_' AND (frequency > 5 OR location = 'local disk')",
//! ).unwrap();
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! expr   := and ( OR and )*
//! and    := unary ( AND unary )*
//! unary  := NOT unary | '(' expr ')' | comparison | TRUE
//! comparison := ident ( '=' | '!=' | '<' | '>' ) value
//!             | ident CONTAINS string
//! value  := 'single-quoted string' | number | true | false
//! ```

use crate::filter::{Filter, Value};

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "filter parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    Eq,
    Ne,
    Lt,
    Gt,
    LParen,
    RParen,
    And,
    Or,
    Not,
    Contains,
    True,
    False,
}

fn tokenize(s: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            '=' => {
                out.push((Tok::Eq, i));
                i += 1;
            }
            '<' => {
                out.push((Tok::Lt, i));
                i += 1;
            }
            '>' => {
                out.push((Tok::Gt, i));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ne, i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected '=' after '!'".into(),
                        at: i,
                    });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string literal".into(),
                        at: i,
                    });
                }
                out.push((Tok::Str(s[start..j].to_owned()), i));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || bytes[j] == b'.'
                        || bytes[j] == b'e'
                        || bytes[j] == b'E'
                        || bytes[j] == b'_')
                {
                    j += 1;
                }
                let text = s[start..j].replace('_', "");
                let n: f64 = text.parse().map_err(|_| ParseError {
                    message: format!("bad number {text:?}"),
                    at: start,
                })?;
                out.push((Tok::Num(n), start));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &s[start..j];
                let tok = match word.to_ascii_uppercase().as_str() {
                    "AND" => Tok::And,
                    "OR" => Tok::Or,
                    "NOT" => Tok::Not,
                    "CONTAINS" => Tok::Contains,
                    "TRUE" => Tok::True,
                    "FALSE" => Tok::False,
                    _ => Tok::Ident(word.to_owned()),
                };
                out.push((tok, start));
                i = j;
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    at: i,
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, at)| at)
            .unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(&want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected {what}"),
                at: self.at(),
            })
        }
    }

    fn expr(&mut self) -> Result<Filter, ParseError> {
        let mut left = self.and()?;
        while self.peek() == Some(&Tok::Or) {
            self.pos += 1;
            left = left.or(self.and()?);
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Filter, ParseError> {
        let mut left = self.unary()?;
        while self.peek() == Some(&Tok::And) {
            self.pos += 1;
            left = left.and(self.unary()?);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Filter, ParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::True) => {
                self.pos += 1;
                Ok(Filter::True)
            }
            Some(Tok::False) => {
                self.pos += 1;
                Ok(Filter::True.not())
            }
            Some(Tok::Ident(_)) => self.comparison(),
            _ => Err(ParseError {
                message: "expected a predicate".into(),
                at: self.at(),
            }),
        }
    }

    fn comparison(&mut self) -> Result<Filter, ParseError> {
        let at = self.at();
        let Some(Tok::Ident(field)) = self.bump() else {
            return Err(ParseError {
                message: "expected a field name".into(),
                at,
            });
        };
        let op_at = self.at();
        match self.bump() {
            Some(Tok::Eq) => Ok(Filter::Eq(field, self.value()?)),
            Some(Tok::Ne) => Ok(Filter::Ne(field, self.value()?)),
            Some(Tok::Lt) => Ok(Filter::Lt(field, self.value()?)),
            Some(Tok::Gt) => Ok(Filter::Gt(field, self.value()?)),
            Some(Tok::Contains) => {
                let v_at = self.at();
                match self.bump() {
                    Some(Tok::Str(s)) => Ok(Filter::Contains(field, s)),
                    _ => Err(ParseError {
                        message: "CONTAINS needs a string literal".into(),
                        at: v_at,
                    }),
                }
            }
            _ => Err(ParseError {
                message: "expected =, !=, <, > or CONTAINS".into(),
                at: op_at,
            }),
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        let at = self.at();
        match self.bump() {
            Some(Tok::Str(s)) => Ok(Value::Str(s)),
            Some(Tok::Num(n)) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    Ok(Value::Int(n as i64))
                } else {
                    Ok(Value::Float(n))
                }
            }
            Some(Tok::True) => Ok(Value::Bool(true)),
            Some(Tok::False) => Ok(Value::Bool(false)),
            _ => Err(ParseError {
                message: "expected a value".into(),
                at,
            }),
        }
    }
}

impl Filter {
    /// Parse a WHERE-clause string into a filter.
    pub fn parse_str(input: &str) -> Result<Filter, ParseError> {
        let toks = tokenize(input)?;
        if toks.is_empty() {
            return Ok(Filter::True);
        }
        let mut p = Parser {
            toks,
            pos: 0,
            len: input.len(),
        };
        let f = p.expr()?;
        if p.pos != p.toks.len() {
            return Err(ParseError {
                message: "trailing input after expression".into(),
                at: p.at(),
            });
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{AccessMode, DatasetId, DatasetRec, ElementType, Location, RunId};
    use msr_storage::StorageKind;

    fn ds(name: &str, freq: u32) -> DatasetRec {
        DatasetRec {
            id: DatasetId(0),
            run: RunId(0),
            name: name.into(),
            amode: AccessMode::Create,
            etype: ElementType::U8,
            dims: vec![128, 128, 128],
            pattern: "BBB".into(),
            strategy: "collective".into(),
            location: Location::Stored(StorageKind::LocalDisk),
            frequency: freq,
            path: String::new(),
            predicted_secs: None,
            last_access_secs: 0.0,
            heat: 0,
        }
    }

    #[test]
    fn simple_equality() {
        let f = Filter::parse_str("name = 'temp'").unwrap();
        assert!(f.eval(&ds("temp", 6)));
        assert!(!f.eval(&ds("press", 6)));
    }

    #[test]
    fn numeric_and_boolean_connectives() {
        let f = Filter::parse_str("frequency > 5 AND frequency < 10").unwrap();
        assert!(f.eval(&ds("x", 6)));
        assert!(!f.eval(&ds("x", 12)));
        let g = Filter::parse_str("frequency = 3 OR frequency = 6").unwrap();
        assert!(g.eval(&ds("x", 6)));
        assert!(!g.eval(&ds("x", 4)));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        // a OR b AND c  ==  a OR (b AND c)
        let f = Filter::parse_str("name = 'a' OR name = 'b' AND frequency > 100").unwrap();
        assert!(f.eval(&ds("a", 1)));
        assert!(!f.eval(&ds("b", 1)), "b requires the frequency clause");
    }

    #[test]
    fn parentheses_override() {
        let f = Filter::parse_str("(name = 'a' OR name = 'b') AND frequency > 100").unwrap();
        assert!(!f.eval(&ds("a", 1)));
        assert!(f.eval(&ds("b", 101)));
    }

    #[test]
    fn not_and_contains() {
        let f = Filter::parse_str("NOT name CONTAINS 'vr_'").unwrap();
        assert!(f.eval(&ds("temp", 6)));
        assert!(!f.eval(&ds("vr_temp", 6)));
    }

    #[test]
    fn keywords_case_insensitive() {
        let f = Filter::parse_str("name contains 'vr' and not frequency > 10").unwrap();
        assert!(f.eval(&ds("vr_rho", 6)));
    }

    #[test]
    fn empty_input_matches_everything() {
        assert_eq!(Filter::parse_str("").unwrap(), Filter::True);
        assert_eq!(Filter::parse_str("   ").unwrap(), Filter::True);
    }

    #[test]
    fn ne_and_floats() {
        let f = Filter::parse_str("name != 'x' AND frequency < 6.5").unwrap();
        assert!(f.eval(&ds("temp", 6)));
        assert!(!f.eval(&ds("x", 6)));
    }

    #[test]
    fn error_positions() {
        let e = Filter::parse_str("name = ").unwrap_err();
        assert!(e.message.contains("value"));
        let e = Filter::parse_str("name ! 'x'").unwrap_err();
        assert!(e.message.contains("'='"));
        let e = Filter::parse_str("name = 'unterminated").unwrap_err();
        assert!(e.message.contains("unterminated"));
        let e = Filter::parse_str("name = 'a' garbage").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = Filter::parse_str("= 'a'").unwrap_err();
        assert!(e.message.contains("predicate"));
    }

    #[test]
    fn integrates_with_catalog_queries() {
        let mut c = crate::Catalog::new();
        let app = c.create_app("astro3d", "").unwrap();
        let user = c.create_user("u", "").unwrap();
        let run = c.create_run(app, user, 120, "").unwrap();
        for (n, f) in [("temp", 6), ("press", 6), ("vr_temp", 12)] {
            let mut rec = ds(n, f);
            rec.run = run;
            c.add_dataset(rec).unwrap();
        }
        let hits = c.query_datasets(
            &Filter::parse_str("frequency = 6 AND NOT name CONTAINS 'vr'").unwrap(),
        );
        assert_eq!(hits.len(), 2);
    }
}
