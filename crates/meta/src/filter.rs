//! A small filter-expression language for ad-hoc catalog queries.
//!
//! The Postgres metadata database of the paper is queried with SQL `WHERE`
//! clauses; the embedded catalog offers the same expressive core: typed
//! field comparisons composed with boolean connectives, evaluated against
//! any record type that exposes named fields.

use crate::records::{ApplicationRec, DatasetRec, ResourceRec, RunRec};
use serde::{Deserialize, Serialize};

/// A dynamically-typed field value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Text value.
    Str(String),
    /// Integer value.
    Int(i64),
    /// Floating value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    fn partial_cmp_num(&self, other: &Value) -> Option<std::cmp::Ordering> {
        let as_f64 = |v: &Value| match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        };
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (as_f64(self)?, as_f64(other)?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// A record type queryable by [`Filter`].
pub trait Record {
    /// Look up a named field; `None` when the record has no such field.
    fn field(&self, name: &str) -> Option<Value>;
}

/// A boolean filter expression over record fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// Matches every record.
    True,
    /// `field == value`.
    Eq(String, Value),
    /// `field != value`.
    Ne(String, Value),
    /// `field < value` (numeric or lexicographic).
    Lt(String, Value),
    /// `field > value`.
    Gt(String, Value),
    /// String field contains the given substring.
    Contains(String, String),
    /// Both sub-filters match.
    And(Box<Filter>, Box<Filter>),
    /// Either sub-filter matches.
    Or(Box<Filter>, Box<Filter>),
    /// Sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// `a AND b` convenience constructor.
    pub fn and(self, other: Filter) -> Filter {
        Filter::And(Box::new(self), Box::new(other))
    }

    /// `a OR b` convenience constructor.
    pub fn or(self, other: Filter) -> Filter {
        Filter::Or(Box::new(self), Box::new(other))
    }

    /// Negation convenience constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Filter {
        Filter::Not(Box::new(self))
    }

    /// `field == value`.
    pub fn eq(field: &str, value: impl Into<Value>) -> Filter {
        Filter::Eq(field.to_owned(), value.into())
    }

    /// Evaluate against a record. Comparisons on missing fields or
    /// mismatched types are false (SQL-NULL-like semantics).
    pub fn eval<R: Record>(&self, r: &R) -> bool {
        match self {
            Filter::True => true,
            Filter::Eq(f, v) => r.field(f).is_some_and(|x| x == *v),
            Filter::Ne(f, v) => r.field(f).is_some_and(|x| x != *v),
            Filter::Lt(f, v) => r
                .field(f)
                .and_then(|x| x.partial_cmp_num(v))
                .is_some_and(|o| o == std::cmp::Ordering::Less),
            Filter::Gt(f, v) => r
                .field(f)
                .and_then(|x| x.partial_cmp_num(v))
                .is_some_and(|o| o == std::cmp::Ordering::Greater),
            Filter::Contains(f, needle) => r
                .field(f)
                .is_some_and(|x| matches!(x, Value::Str(s) if s.contains(needle))),
            Filter::And(a, b) => a.eval(r) && b.eval(r),
            Filter::Or(a, b) => a.eval(r) || b.eval(r),
            Filter::Not(a) => !a.eval(r),
        }
    }
}

impl Record for DatasetRec {
    fn field(&self, name: &str) -> Option<Value> {
        Some(match name {
            "name" => Value::Str(self.name.clone()),
            "amode" => Value::Str(self.amode.to_string()),
            "etype" => Value::Str(self.etype.to_string()),
            "ndims" => Value::Int(self.dims.len() as i64),
            "pattern" => Value::Str(self.pattern.clone()),
            "strategy" => Value::Str(self.strategy.clone()),
            "location" => Value::Str(self.location.to_string()),
            "frequency" => Value::Int(i64::from(self.frequency)),
            "path" => Value::Str(self.path.clone()),
            "bytes" => Value::Int(self.snapshot_bytes() as i64),
            "run" => Value::Int(self.run.0 as i64),
            _ => return None,
        })
    }
}

impl Record for RunRec {
    fn field(&self, name: &str) -> Option<Value> {
        Some(match name {
            "app" => Value::Int(self.app.0 as i64),
            "user" => Value::Int(self.user.0 as i64),
            "iterations" => Value::Int(i64::from(self.iterations)),
            "tag" => Value::Str(self.tag.clone()),
            _ => return None,
        })
    }
}

impl Record for ResourceRec {
    fn field(&self, name: &str) -> Option<Value> {
        Some(match name {
            "name" => Value::Str(self.name.clone()),
            "kind" => Value::Str(self.kind.to_string()),
            "site" => Value::Str(self.site.clone()),
            "capacity" => Value::Int(self.capacity.min(i64::MAX as u64) as i64),
            _ => return None,
        })
    }
}

impl Record for ApplicationRec {
    fn field(&self, name: &str) -> Option<Value> {
        Some(match name {
            "name" => Value::Str(self.name.clone()),
            "description" => Value::Str(self.description.clone()),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::*;
    use msr_storage::StorageKind;

    fn ds(name: &str, freq: u32, loc: Location) -> DatasetRec {
        DatasetRec {
            id: DatasetId(0),
            run: RunId(7),
            name: name.into(),
            amode: AccessMode::Create,
            etype: ElementType::U8,
            dims: vec![128, 128, 128],
            pattern: "BBB".into(),
            strategy: "collective".into(),
            location: loc,
            frequency: freq,
            path: format!("astro3d/{name}"),
            predicted_secs: None,
            last_access_secs: 0.0,
            heat: 0,
        }
    }

    #[test]
    fn eq_and_ne() {
        let d = ds("vr_temp", 6, Location::Stored(StorageKind::LocalDisk));
        assert!(Filter::eq("name", "vr_temp").eval(&d));
        assert!(!Filter::eq("name", "temp").eval(&d));
        assert!(Filter::Ne("name".into(), "temp".into()).eval(&d));
    }

    #[test]
    fn numeric_comparisons_mix_int_float() {
        let d = ds("temp", 6, Location::Disabled);
        assert!(Filter::Lt("frequency".into(), Value::Int(10)).eval(&d));
        assert!(Filter::Gt("frequency".into(), Value::Float(5.5)).eval(&d));
        assert!(!Filter::Gt("frequency".into(), Value::Int(6)).eval(&d));
    }

    #[test]
    fn boolean_connectives() {
        let d = ds("vr_press", 6, Location::Stored(StorageKind::RemoteDisk));
        let f = Filter::Contains("name".into(), "vr_".into())
            .and(Filter::eq("location", "remote disk"));
        assert!(f.eval(&d));
        assert!(!f.clone().not().eval(&d));
        let g = Filter::eq("name", "nope").or(Filter::True);
        assert!(g.eval(&d));
    }

    #[test]
    fn missing_field_is_false_not_error() {
        let d = ds("temp", 6, Location::Disabled);
        assert!(!Filter::eq("no_such_column", 1i64).eval(&d));
        // ...but its negation is true, like SQL's NOT on NULL is not. Ours
        // is plain boolean: document the difference.
        assert!(Filter::eq("no_such_column", 1i64).not().eval(&d));
    }

    #[test]
    fn type_mismatch_is_false() {
        let d = ds("temp", 6, Location::Disabled);
        assert!(!Filter::Lt("name".into(), Value::Int(5)).eval(&d));
    }

    #[test]
    fn other_record_types_expose_fields() {
        let r = RunRec {
            id: RunId(1),
            app: AppId(2),
            user: UserId(3),
            iterations: 120,
            tag: "prod".into(),
        };
        assert!(Filter::eq("iterations", 120u32).eval(&r));
        let res = ResourceRec {
            name: "sdsc-disk".into(),
            kind: StorageKind::RemoteDisk,
            site: "SDSC".into(),
            capacity: u64::MAX,
        };
        assert!(Filter::eq("kind", "remote disk").eval(&res));
        assert!(Filter::Gt("capacity".into(), Value::Int(0)).eval(&res));
        let app = ApplicationRec {
            id: AppId(1),
            name: "astro3d".into(),
            description: "hydro".into(),
        };
        assert!(Filter::Contains("name".into(), "astro".into()).eval(&app));
    }

    #[test]
    fn filters_serialize() {
        let f = Filter::eq("name", "temp").and(Filter::Gt("bytes".into(), Value::Int(0)));
        let j = serde_json::to_string(&f).unwrap();
        let back: Filter = serde_json::from_str(&j).unwrap();
        assert_eq!(back, f);
    }
}
