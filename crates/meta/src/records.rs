//! Table row types of the metadata catalog.
//!
//! The columns mirror what the paper shows in Fig. 11's IJ-GUI table
//! (NAME, AMODE, NDIMS, ETYPE, PATTERN, DIMS, EXPECTEDLOC, FREQUENCY,
//! VIRTUALTIME) plus the application/user/run bookkeeping of §3.2.

use msr_storage::StorageKind;
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "#{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Primary key of an application record.
    AppId
);
id_type!(
    /// Primary key of a user record.
    UserId
);
id_type!(
    /// Primary key of a run record.
    RunId
);
id_type!(
    /// Primary key of a dataset record.
    DatasetId
);

/// A registered application (e.g. `astro3d`, `volren`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplicationRec {
    /// Primary key.
    pub id: AppId,
    /// Unique application name.
    pub name: String,
    /// Free-form description.
    pub description: String,
}

/// A registered user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserRec {
    /// Primary key.
    pub id: UserId,
    /// Login-style name.
    pub name: String,
    /// Home site of the user (display only).
    pub site: String,
}

/// One execution of an application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRec {
    /// Primary key.
    pub id: RunId,
    /// Which application ran.
    pub app: AppId,
    /// Who ran it.
    pub user: UserId,
    /// Total number of iterations (the `N` of eq. (2)).
    pub iterations: u32,
    /// Free-form tag, e.g. `"128^3 production"`.
    pub tag: String,
}

/// How a dataset's files are opened each dump (Fig. 11's AMODE column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMode {
    /// A fresh file (or appended snapshot region) per dump.
    Create,
    /// Rewritten in place every dump (checkpoint/restart datasets).
    OverWrite,
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessMode::Create => "create",
            AccessMode::OverWrite => "over_write",
        })
    }
}

/// Element type of a dataset (Fig. 11's ETYPE column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElementType {
    /// 32-bit float (analysis/checkpoint variables).
    F32,
    /// 64-bit float.
    F64,
    /// Unsigned byte (visualization variables).
    U8,
}

impl ElementType {
    /// Size of one element in bytes.
    pub fn size(self) -> u64 {
        match self {
            ElementType::F32 => 4,
            ElementType::F64 => 8,
            ElementType::U8 => 1,
        }
    }
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ElementType::F32 => "f32",
            ElementType::F64 => "f64",
            ElementType::U8 => "u8",
        })
    }
}

/// Where a dataset lives (or is destined): the catalog-resident form of the
/// paper's per-dataset "location" attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Location {
    /// Bound to a concrete storage kind.
    Stored(StorageKind),
    /// Dump suppressed for this run (the paper's `DISABLE`).
    Disabled,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Stored(k) => write!(f, "{k}"),
            Location::Disabled => f.write_str("disabled"),
        }
    }
}

/// A dataset produced (or consumed) by a run — one row of Fig. 11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRec {
    /// Primary key.
    pub id: DatasetId,
    /// Owning run.
    pub run: RunId,
    /// Dataset name, e.g. `"temp"`, `"vr_press"`.
    pub name: String,
    /// Open mode per dump.
    pub amode: AccessMode,
    /// Element type.
    pub etype: ElementType,
    /// Global array dimensions, e.g. `[128, 128, 128]`.
    pub dims: Vec<u64>,
    /// Distribution pattern string, e.g. `"BBB"` (block in each dim).
    pub pattern: String,
    /// I/O optimization the dumps were written with (e.g. `"collective"`,
    /// `"subfile"`); consumers need it to interpret the on-storage layout.
    #[serde(default = "default_strategy")]
    pub strategy: String,
    /// Resolved storage location.
    pub location: Location,
    /// Dump frequency in iterations (the `freq(j)` of eq. (2)).
    pub frequency: u32,
    /// Path prefix on the storage resource.
    pub path: String,
    /// Predicted total I/O time for the run, seconds (VIRTUALTIME column);
    /// filled in by the predictor.
    pub predicted_secs: Option<f64>,
    /// Virtual time of the most recent write or read of any dump, seconds.
    /// Updated for free (no query cost) by the access-recency hooks; the
    /// lifecycle engine keys demotion decisions on it.
    #[serde(default)]
    pub last_access_secs: f64,
    /// Accesses since the lifecycle engine last promoted this dataset (or
    /// reset the counter) — the "heat" a promotion decision looks at.
    #[serde(default)]
    pub heat: u64,
}

impl DatasetRec {
    /// Bytes of one dump (the full global array).
    pub fn snapshot_bytes(&self) -> u64 {
        self.dims.iter().product::<u64>() * self.etype.size()
    }

    /// Number of dumps a run of `n` iterations performs: `N/freq + 1`
    /// (eq. (2) counts the initial dump).
    pub fn dumps(&self, iterations: u32) -> u32 {
        match iterations.checked_div(self.frequency) {
            None => 0,
            Some(d) => d + 1,
        }
    }
}

fn default_strategy() -> String {
    "collective".to_owned()
}

/// Residency state of one dump on its storage resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DumpState {
    /// On its resource and readable directly.
    #[default]
    Resident,
    /// Moved to the tape vault: the bytes exist but every read fails with
    /// `StorageError::Vaulted` until a priced recall brings them back.
    Vaulted,
}

impl fmt::Display for DumpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DumpState::Resident => "resident",
            DumpState::Vaulted => "vaulted",
        })
    }
}

/// One dump of a dataset — the per-snapshot row the lifecycle engine scans
/// for retention and vaulting decisions. Kept as a flat list (not a map)
/// so the catalog stays a plain JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DumpRec {
    /// Owning dataset.
    pub dataset: DatasetId,
    /// Iteration number of the dump.
    pub iter: u32,
    /// Virtual time the dump was written, seconds.
    pub written_secs: f64,
    /// Size of the dump in bytes.
    pub bytes: u64,
    /// Virtual time of the most recent read (or the write, if never read).
    #[serde(default)]
    pub last_access_secs: f64,
    /// Number of reads served from this dump.
    #[serde(default)]
    pub reads: u64,
    /// Residency state.
    #[serde(default)]
    pub state: DumpState,
}

/// A registered storage resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceRec {
    /// Resource name (matches `StorageResource::name`).
    pub name: String,
    /// Kind of resource.
    pub kind: StorageKind,
    /// Hosting site name.
    pub site: String,
    /// Capacity in bytes.
    pub capacity: u64,
}

/// One timing sample of the performance database: a complete native-call
/// measurement for a given resource/op/size (the rows behind Figs. 6–8 and
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfSample {
    /// Request size in bytes.
    pub bytes: u64,
    /// Measured transfer time `T_read/write(s)`, seconds.
    pub transfer_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dataset() -> DatasetRec {
        DatasetRec {
            id: DatasetId(1),
            run: RunId(1),
            name: "temp".into(),
            amode: AccessMode::Create,
            etype: ElementType::F32,
            dims: vec![128, 128, 128],
            pattern: "BBB".into(),
            strategy: "collective".into(),
            location: Location::Stored(StorageKind::RemoteDisk),
            frequency: 6,
            path: "astro3d/run1/temp".into(),
            predicted_secs: None,
            last_access_secs: 0.0,
            heat: 0,
        }
    }

    #[test]
    fn snapshot_bytes_for_paper_shapes() {
        let d = temp_dataset();
        assert_eq!(d.snapshot_bytes(), 128 * 128 * 128 * 4); // 8 MiB
        let mut vr = d;
        vr.etype = ElementType::U8;
        assert_eq!(vr.snapshot_bytes(), 128 * 128 * 128); // 2 MiB
    }

    #[test]
    fn dump_count_matches_eq2() {
        let d = temp_dataset();
        assert_eq!(d.dumps(120), 21); // 120/6 + 1, the paper's example
        assert_eq!(d.dumps(0), 1);
        let mut never = temp_dataset();
        never.frequency = 0;
        assert_eq!(never.dumps(120), 0);
    }

    #[test]
    fn element_sizes() {
        assert_eq!(ElementType::F32.size(), 4);
        assert_eq!(ElementType::F64.size(), 8);
        assert_eq!(ElementType::U8.size(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AccessMode::OverWrite.to_string(), "over_write");
        assert_eq!(ElementType::U8.to_string(), "u8");
        assert_eq!(Location::Disabled.to_string(), "disabled");
        assert_eq!(
            Location::Stored(StorageKind::RemoteTape).to_string(),
            "remote tape"
        );
        assert_eq!(DatasetId(3).to_string(), "DatasetId#3");
    }

    #[test]
    fn records_serde_roundtrip() {
        let d = temp_dataset();
        let j = serde_json::to_string(&d).unwrap();
        let back: DatasetRec = serde_json::from_str(&j).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn dataset_json_without_lifecycle_fields_still_loads() {
        // Catalogs saved before the lifecycle engine existed have no
        // recency/heat columns; they must deserialize as cold.
        let mut v = serde_json::to_value(&temp_dataset()).unwrap();
        let obj = v.as_object_mut().unwrap();
        obj.remove("last_access_secs");
        obj.remove("heat");
        let back: DatasetRec = serde_json::from_value(v).unwrap();
        assert_eq!(back.last_access_secs, 0.0);
        assert_eq!(back.heat, 0);
    }

    #[test]
    fn dump_rec_serde_defaults() {
        let j = r#"{"dataset":3,"iter":6,"written_secs":12.5,"bytes":1024}"#;
        let d: DumpRec = serde_json::from_str(j).unwrap();
        assert_eq!(d.dataset, DatasetId(3));
        assert_eq!(d.state, DumpState::Resident);
        assert_eq!(d.reads, 0);
        assert_eq!(d.last_access_secs, 0.0);
        assert_eq!(DumpState::Vaulted.to_string(), "vaulted");
    }
}
