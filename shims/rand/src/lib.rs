//! Offline stand-in for the subset of `rand` 0.9 this workspace uses.
//!
//! [`StdRng`] is xoshiro256++ (seeded through splitmix64) instead of the
//! upstream ChaCha12 — statistically fine for simulation noise, but the
//! numeric streams differ from crates.io `rand`, so anything asserting exact
//! jittered values must derive expectations from this generator.

use std::ops::{Range, RangeInclusive};

/// A value that can be sampled uniformly from an [`Rng`]'s raw output.
pub trait Fill: Sized {
    /// Draw one uniformly distributed value.
    fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! fill_int {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for u128 {
    fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}
impl Fill for i128 {
    fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> i128 {
        u128::fill_from(rng) as i128
    }
}

impl Fill for bool {
    fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Fill for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range a value can be drawn from (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Fill>::fill_from(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = <$t as Fill>::fill_from(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
range_float!(f32, f64);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The random-number-generator interface (merged `RngCore` + `Rng` of rand
/// 0.9, restricted to what this workspace calls).
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// The raw 32-bit output stream (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value of type `T`.
    fn random<T: Fill>(&mut self) -> T {
        T::fill_from(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed (only the `seed_from_u64` entry point of
/// rand's `SeedableRng` is provided).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named re-exports matching `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Process-global convenience generator (deterministic in this shim).
pub fn random<T: Fill>() -> T {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0x5eed_5eed_5eed_5eed) };
    }
    STATE.with(|s| {
        let mut state = s.get();
        let v = splitmix64(&mut state);
        s.set(state);
        let mut rng = StdRng::seed_from_u64(v);
        rng.random()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn float_ranges_hit_band() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = r.random_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let g = r.random_range(f64::EPSILON..1.0);
            assert!(g > 0.0 && g < 1.0);
        }
    }

    #[test]
    fn int_ranges_hit_band() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(r.random_range(4u32..5), 4);
    }

    #[test]
    fn mean_is_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut r = StdRng::seed_from_u64(5);
        assert!(draw(&mut r) < 1.0);
    }
}
