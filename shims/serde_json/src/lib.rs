//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string` / `to_string_pretty` / `to_vec` / `from_str` / `from_slice`
//! over the serde shim's [`Value`] tree.
//!
//! Floats are written with Rust's shortest-roundtrip `Display`, so
//! `f64 → JSON → f64` is bit-exact (the behaviour the workspace opted into
//! upstream via the `float_roundtrip` feature). Non-finite floats serialize
//! as `null`, matching serde_json.

use serde::{DeError, Deserialize, Num, Serialize};

pub use serde::Value;

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Result alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

// ---- writing ----------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: Num) {
    match n {
        Num::U(u) => out.push_str(&u.to_string()),
        Num::I(i) => out.push_str(&i.to_string()),
        Num::F(f) if !f.is_finite() => out.push_str("null"),
        Num::F(f) => {
            // Rust's Display for floats is shortest-roundtrip; ensure a
            // decimal point or exponent survives so the value re-parses as
            // a float-shaped number.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent.map(|d| d + 1));
                write_value(out, item, indent.map(|d| d + 1));
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent.map(|d| d + 1));
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|d| d + 1));
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

fn pad(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    Ok(T::from_value(&v)?)
}

// ---- parsing ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{', "expected {")?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_lit("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str upstream, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::Num(Num::I(-(i as i64))));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Num::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Num::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parse a [`Value`] tree out of JSON text.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    Ok(T::from_value(&parse_value(s)?)?)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 2.5e17, -0.0, 144.63333333333333] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let big: u64 = (1 << 60) + 7;
        let s = to_string(&big).unwrap();
        assert_eq!(s, big.to_string());
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let src = "a\"b\\c\nd\te\u{8}\u{c}π—🦀";
        let s = to_string(&src.to_owned()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), src);
        // And explicit \u escapes parse too.
        assert_eq!(from_str::<String>(r#""é🦀""#).unwrap(), "é🦀");
    }

    #[test]
    fn pretty_output_shape() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_owned(), vec![1u64, 2]);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\"k\": [\n"), "{pretty}");
        let back: std::collections::BTreeMap<String, Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
