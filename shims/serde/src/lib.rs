//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Instead of upstream's visitor architecture, everything serializes through
//! an owned [`Value`] tree (the same data model as JSON). The derive macros
//! re-exported from `serde_derive` generate `to_value` / `from_value`
//! implementations that follow serde's externally-tagged conventions, so the
//! JSON produced by `serde_json` (the sibling shim) matches what crates.io
//! serde would emit for these types: unit enum variants as strings, data
//! variants as single-key objects, newtype structs transparent, tuples as
//! arrays, `None` as `null`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped number preserving integer exactness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Num {
    /// Lossy view as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Num::U(u) => u as f64,
            Num::I(i) => i as f64,
            Num::F(f) => f,
        }
    }

    /// Exact view as `u64`, if representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Num::U(u) => Some(u),
            Num::I(i) => u64::try_from(i).ok(),
            Num::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Num::F(_) => None,
        }
    }

    /// Exact view as `i64`, if representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Num::U(u) => i64::try_from(u).ok(),
            Num::I(i) => Some(i),
            Num::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Num::F(_) => None,
        }
    }
}

/// The serialization data model: a JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Num),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Arr(Vec<Value>),
    /// A string-keyed map (field order = key order).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Borrow as an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an object (serde_json's name for [`Value::as_obj`]).
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        self.as_obj()
    }

    /// Mutably borrow as an object.
    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as a number.
    pub fn as_num(&self) -> Option<Num> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// One-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Arbitrary-message constructor.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> DeError {
        DeError::custom(format!("missing field `{field}`"))
    }

    /// The value had the wrong shape.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError::custom(format!("expected {what}, found {}", got.kind()))
    }

    /// An enum tag was not recognised.
    pub fn unknown_variant(tag: &str, ty: &str) -> DeError {
        DeError::custom(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Build the value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent; `Option` overrides this to
    /// yield `None`, everything else errors.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

// ---- derive support helpers -------------------------------------------------

/// Fetch and decode a struct field, routing absence through `from_missing`.
pub fn de_field<T: Deserialize>(m: &BTreeMap<String, Value>, name: &str) -> Result<T, DeError> {
    match m.get(name) {
        Some(v) => T::from_value(v),
        None => T::from_missing(name),
    }
}

/// Decode element `i` of a fixed-arity sequence (tuple struct / variant).
pub fn de_idx<T: Deserialize>(a: &[Value], i: usize, ctx: &str) -> Result<T, DeError> {
    match a.get(i) {
        Some(v) => T::from_value(v),
        None => Err(DeError::custom(format!("{ctx}: missing element {i}"))),
    }
}

/// Build serde's externally-tagged form: `{"VariantName": inner}`.
pub fn variant(name: &str, inner: Value) -> Value {
    let mut m = BTreeMap::new();
    m.insert(name.to_owned(), inner);
    Value::Obj(m)
}

/// Destructure serde's externally-tagged form.
pub fn as_variant(v: &Value) -> Option<(&str, &Value)> {
    let m = v.as_obj()?;
    if m.len() != 1 {
        return None;
    }
    m.iter().next().map(|(k, inner)| (k.as_str(), inner))
}

// ---- primitive impls --------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Num::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                v.as_num()
                    .and_then(Num::as_u64)
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::Num(Num::U(i as u64)) } else { Value::Num(Num::I(i)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                v.as_num()
                    .and_then(Num::as_i64)
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Num::F(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        v.as_num()
            .map(Num::as_f64)
            .ok_or_else(|| DeError::expected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Num::F(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

// ---- compound impls ---------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Arc<T>, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Option<T>, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<VecDeque<T>, DeError> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N}, found {got}")))
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                let a = v.as_arr().ok_or_else(|| DeError::expected("tuple array", v))?;
                Ok(($(de_idx::<$t>(a, $i, "tuple")?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output, matching BTreeMap behaviour.
        let mut m = BTreeMap::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Obj(m)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<(), DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_yields_none() {
        assert_eq!(
            <Option<f64> as Deserialize>::from_missing("x").unwrap(),
            None
        );
        assert!(<f64 as Deserialize>::from_missing("x").is_err());
    }

    #[test]
    fn u64_exactness_preserved() {
        let big = (1u64 << 60) + 3;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (7u64, 3.5f64);
        let back: (u64, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }
}
