//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! non-poisoning [`Mutex`] and [`RwLock`] built on `std::sync`. Panics in a
//! critical section simply hand the (possibly inconsistent) value to the next
//! holder, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Access the value through an exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire a read guard only if no writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire a write guard only if the lock is free.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Access the value through an exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        assert_eq!(m.into_inner(), 4);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
