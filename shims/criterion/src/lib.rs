//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Keeps the `benchmark_group` / `bench_with_input` / `b.iter` API shape so
//! `[[bench]]` targets compile and run without the crates.io harness. Each
//! benchmark is timed with `std::time::Instant` over a small fixed number of
//! samples and the median per-iteration time is printed — good enough for
//! before/after comparisons, with none of criterion's statistics.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for a group's reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}
impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured routine.
pub struct Bencher {
    samples: u32,
    median: Duration,
}

impl Bencher {
    /// Time `routine`, keeping the median over a few samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        times.sort();
        self.median = times[times.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's statistical knob;
    /// here simply the repeat count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).clamp(1, 100);
        self
    }

    /// Record the per-iteration volume so a rate is reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sample count governs runtime here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            median: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, b.median);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            median: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, b.median);
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, median: Duration) {
        let secs = median.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!("  {:>10.1} elem/s", n as f64 / secs)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>12.3?}{rate}",
            format!("{}/{id}", self.name),
            median
        );
    }
}

/// Top-level harness handle (criterion's entry type).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("crit").bench_function(id, f);
        self
    }
}

/// Declare a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declare `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
