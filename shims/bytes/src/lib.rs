//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: [`Bytes`] as an `Arc`-backed, cheaply-cloneable immutable buffer
//! with zero-copy [`Bytes::slice`], and [`BytesMut`] as a growable builder
//! that [`BytesMut::freeze`]s into `Bytes`.

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;
use std::{cmp, fmt};

/// An immutable, reference-counted byte buffer. Cloning and slicing are
/// O(1) and share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared yet).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// A static buffer (copies in this shim; real `bytes` borrows).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the contents out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data[self.start..self.end].iter()
    }
}

/// A growable byte builder; [`BytesMut::freeze`] converts to [`Bytes`]
/// without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Alias for [`BytesMut::extend_from_slice`] (bytes' `BufMut::put_slice`).
    pub fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grow or shrink to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::from(vec![2, 3]));
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abc");
        m.extend_from_slice(b"def");
        assert_eq!(m.freeze(), Bytes::copy_from_slice(b"abcdef"));
    }

    #[test]
    fn equality_against_vec_and_slice() {
        let b = Bytes::from(vec![9, 9]);
        assert_eq!(b, vec![9u8, 9]);
        assert_eq!(b, &[9u8, 9][..]);
    }
}
