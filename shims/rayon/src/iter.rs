//! Indexed parallel iterators over splittable sources.
//!
//! Every source this workspace parallelizes over is *indexed* — slices,
//! chunked slices, integer ranges, vectors — so the whole machinery rests
//! on one trait: [`Producer`], a splittable source of known length.
//! Adapters ([`Map`], [`Zip`], [`Enumerate`]) compose producers; terminal
//! operations split the composed producer into work chunks and run them on
//! the pool via [`crate::pool::execute`].
//!
//! **Determinism.** The chunk partition is a pure function of the producer
//! length ([`num_chunks`]) — never of the worker count — and chunk results
//! are combined in chunk order. Reductions over floats therefore associate
//! identically whether a region runs on one thread or sixteen, which is
//! what lets the runtime promise bitwise-identical results under
//! `MSR_THREADS=1` and `MSR_THREADS=N`.

use crate::pool::execute;

/// A splittable, indexed source of items: the engine room of every
/// `par_*` iterator.
pub trait Producer: Sized + Send {
    /// Item yielded to the per-chunk sequential iterator.
    type Item: Send;
    /// Sequential iterator over one chunk.
    type Iter: Iterator<Item = Self::Item>;

    /// Remaining items.
    fn len(&self) -> usize;
    /// Whether nothing is left.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Sequential iterator over everything left.
    fn into_seq(self) -> Self::Iter;
}

/// How many work chunks a region of `len` items is cut into. A pure
/// function of `len` so that chunked reductions associate identically for
/// every worker count.
pub fn num_chunks(len: usize) -> usize {
    len.min(128)
}

/// Cut `p` into `k` balanced chunks (first `len % k` chunks get one extra).
fn split_chunks<P: Producer>(p: P, k: usize) -> Vec<P> {
    let len = p.len();
    let mut parts = Vec::with_capacity(k);
    let mut rest = p;
    for c in 0..k {
        let take = len / k + usize::from(c < len % k);
        let (head, tail) = rest.split_at(take);
        parts.push(head);
        rest = tail;
    }
    parts
}

/// Split `p` into chunks, run `consume` over each chunk's sequential
/// iterator on the pool, and return the per-chunk results in chunk order.
fn drive<P, R, F>(p: P, consume: F) -> Vec<R>
where
    P: Producer,
    R: Send,
    F: Fn(P::Iter) -> R + Sync,
{
    let len = p.len();
    if len == 0 {
        return Vec::new();
    }
    let consume = &consume;
    let tasks: Vec<_> = split_chunks(p, num_chunks(len))
        .into_iter()
        .map(|chunk| move || consume(chunk.into_seq()))
        .collect();
    execute(tasks)
}

/// A parallel iterator: a [`Producer`] plus the adapter/terminal API.
#[derive(Debug, Clone)]
pub struct ParIter<P> {
    producer: P,
}

impl<P: Producer> ParIter<P> {
    /// Wrap a producer.
    pub fn from_producer(producer: P) -> Self {
        ParIter { producer }
    }

    /// Items in the iterator.
    pub fn len(&self) -> usize {
        self.producer.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transform each item with `f`.
    pub fn map<R, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Clone + Send + Sync,
    {
        ParIter::from_producer(Map {
            base: self.producer,
            f,
        })
    }

    /// Pair items positionally with `other` (truncating to the shorter).
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<Zip<P, Q>> {
        ParIter::from_producer(Zip {
            a: self.producer,
            b: other.producer,
        })
    }

    /// Attach the item index.
    pub fn enumerate(self) -> ParIter<Enumerate<P>> {
        ParIter::from_producer(Enumerate {
            base: self.producer,
            offset: 0,
        })
    }

    /// Map each item to a sequential iterator and flatten, preserving
    /// order (rayon's `flat_map_iter`).
    pub fn flat_map_iter<U, F>(self, f: F) -> ParFlatMap<P, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(P::Item) -> U + Clone + Send + Sync,
    {
        ParFlatMap {
            base: self.producer,
            f,
        }
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        drive(self.producer, |chunk| chunk.for_each(&f));
    }

    /// Sum the items (chunk partials combined in chunk order).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        drive(self.producer, |chunk| chunk.sum::<S>())
            .into_iter()
            .sum()
    }

    /// Reduce with an associative `op` and its `identity` (rayon's
    /// `reduce`, with the identity taken by value).
    pub fn reduce<F>(self, identity: P::Item, op: F) -> P::Item
    where
        P::Item: Clone + Sync,
        F: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        drive(self.producer, |chunk| chunk.fold(identity.clone(), &op))
            .into_iter()
            .fold(identity, op)
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.producer.len()
    }

    /// Collect into a container, preserving item order.
    pub fn collect<C>(self) -> C
    where
        C: From<Vec<P::Item>>,
    {
        let len = self.producer.len();
        let chunks = drive(self.producer, |chunk| chunk.collect::<Vec<_>>());
        let mut out = Vec::with_capacity(len);
        for c in chunks {
            out.extend(c);
        }
        C::from(out)
    }
}

/// Lazy `flat_map_iter`: outer chunks run in parallel, each inner iterator
/// is drained sequentially, and chunk outputs concatenate in order.
#[derive(Debug, Clone)]
pub struct ParFlatMap<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParFlatMap<P, F>
where
    P: Producer,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Clone + Send + Sync,
{
    /// Run `g` on every flattened item.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U::Item) + Send + Sync,
    {
        let f = &self.f;
        drive(self.base, |chunk| {
            for item in chunk {
                for inner in f(item) {
                    g(inner);
                }
            }
        });
    }

    /// Collect the flattened items, preserving order.
    pub fn collect<C>(self) -> C
    where
        C: From<Vec<U::Item>>,
    {
        let f = &self.f;
        let chunks = drive(self.base, |chunk| chunk.flat_map(f).collect::<Vec<_>>());
        let mut out = Vec::new();
        for c in chunks {
            out.extend(c);
        }
        C::from(out)
    }
}

// ---- adapter producers -----------------------------------------------------

/// Producer adapter applying `f` to each item of `base`.
#[derive(Debug, Clone)]
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> Producer for Map<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
{
    type Item = R;
    type Iter = std::iter::Map<P::Iter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }
    fn into_seq(self) -> Self::Iter {
        self.base.into_seq().map(self.f)
    }
}

/// Producer adapter pairing two producers positionally.
#[derive(Debug, Clone)]
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Iter = std::iter::Zip<A::Iter, B::Iter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(mid);
        let (bl, br) = self.b.split_at(mid);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }
    fn into_seq(self) -> Self::Iter {
        // Trim both sides so a length mismatch cannot leak extra items.
        let n = self.a.len().min(self.b.len());
        let (a, _) = self.a.split_at(n);
        let (b, _) = self.b.split_at(n);
        a.into_seq().zip(b.into_seq())
    }
}

/// Producer adapter attaching the global item index.
#[derive(Debug, Clone)]
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type Iter = std::iter::Zip<std::ops::Range<usize>, P::Iter>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + mid,
            },
        )
    }
    fn into_seq(self) -> Self::Iter {
        let lo = self.offset;
        let hi = lo + self.base.len();
        (lo..hi).zip(self.base.into_seq())
    }
}

// ---- leaf producers --------------------------------------------------------

/// Shared-slice producer (`par_iter`).
#[derive(Debug)]
pub struct SliceProducer<'a, T>(pub &'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(mid);
        (SliceProducer(l), SliceProducer(r))
    }
    fn into_seq(self) -> Self::Iter {
        self.0.iter()
    }
}

/// Exclusive-slice producer (`par_iter_mut`).
#[derive(Debug)]
pub struct SliceMutProducer<'a, T>(pub &'a mut [T]);

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(mid);
        (SliceMutProducer(l), SliceMutProducer(r))
    }
    fn into_seq(self) -> Self::Iter {
        self.0.iter_mut()
    }
}

/// Shared chunked-slice producer (`par_chunks`).
#[derive(Debug)]
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T> ChunksProducer<'a, T> {
    /// Chunks of `size` over `slice` (last chunk may be shorter).
    pub fn new(slice: &'a [T], size: usize) -> Self {
        ChunksProducer { slice, size }
    }
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type Iter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            ChunksProducer {
                slice: l,
                size: self.size,
            },
            ChunksProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::Iter {
        self.slice.chunks(self.size)
    }
}

/// Exclusive chunked-slice producer (`par_chunks_mut`).
#[derive(Debug)]
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T> ChunksMutProducer<'a, T> {
    /// Exclusive chunks of `size` over `slice` (last chunk may be shorter).
    pub fn new(slice: &'a mut [T], size: usize) -> Self {
        ChunksMutProducer { slice, size }
    }
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type Iter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ChunksMutProducer {
                slice: l,
                size: self.size,
            },
            ChunksMutProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::Iter {
        self.slice.chunks_mut(self.size)
    }
}

/// Owned-vector producer (`Vec::into_par_iter`).
#[derive(Debug)]
pub struct VecProducer<T>(pub Vec<T>);

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let right = self.0.split_off(mid);
        (self, VecProducer(right))
    }
    fn into_seq(self) -> Self::Iter {
        self.0.into_iter()
    }
}

/// Integer-range producer (`(a..b).into_par_iter()`).
#[derive(Debug, Clone)]
pub struct RangeProducer<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type Iter = std::ops::Range<$t>;

            fn len(&self) -> usize {
                self.len
            }
            fn split_at(self, mid: usize) -> (Self, Self) {
                (
                    RangeProducer { start: self.start, len: mid },
                    RangeProducer {
                        start: self.start + mid as $t,
                        len: self.len - mid,
                    },
                )
            }
            fn into_seq(self) -> Self::Iter {
                self.start..self.start + self.len as $t
            }
        }

        impl crate::prelude::IntoParallelIterator for std::ops::Range<$t> {
            type Producer = RangeProducer<$t>;
            fn into_par_iter(self) -> ParIter<RangeProducer<$t>> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter::from_producer(RangeProducer {
                    start: self.start,
                    len,
                })
            }
        }
    )*};
}

impl_range_producer!(usize, u32, u64, i32, i64);
