//! The work-stealing thread pool behind every `par_*` entry point.
//!
//! Workers are `std::thread::scope`d threads spawned per parallel region:
//! the region's tasks are dealt into per-worker deques, each worker drains
//! its own deque from the front and steals from the back of a victim's
//! deque when it runs dry. Scoped spawning keeps the whole scheduler free
//! of `unsafe` (borrowed task data needs no lifetime erasure) and lets a
//! worker panic propagate to the caller via `resume_unwind` after every
//! other worker has drained the remaining tasks.
//!
//! Sizing: `MSR_THREADS` overrides the worker count (`0` or `1` force
//! fully sequential execution); unset, the pool uses
//! [`std::thread::available_parallelism`]. [`with_threads`] overrides the
//! count for one closure on the current thread — the hook the determinism
//! tests use to compare pool and forced-sequential runs in one process.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Worker-count configuration for parallel regions.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> Option<usize> {
    std::env::var("MSR_THREADS").ok()?.trim().parse().ok()
}

impl ThreadPool {
    /// A pool running parallel regions on `threads` workers (clamped to at
    /// least 1; 1 means sequential).
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// The process-wide pool: `MSR_THREADS` if set, else the host's
    /// available parallelism.
    pub fn global() -> &'static ThreadPool {
        GLOBAL.get_or_init(|| {
            let n = env_threads().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
            ThreadPool::new(n)
        })
    }

    /// Worker count of this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// The worker count parallel regions started from this thread will use.
pub fn current_num_threads() -> usize {
    OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(|| ThreadPool::global().threads())
}

/// Run `f` with parallel regions on this thread capped to `threads`
/// workers (`0`/`1` force sequential execution). Restored on exit, panic
/// included.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(threads.max(1)))));
    f()
}

/// Run `tasks` on the pool and return their results in task order.
///
/// The caller's thread doubles as worker 0, so a single-task or
/// single-thread region never spawns. Any worker panic is re-raised on the
/// caller once the region has shut down.
pub fn execute<T, R>(tasks: Vec<T>) -> Vec<R>
where
    T: FnOnce() -> R + Send,
    R: Send,
{
    let total = tasks.len();
    let workers = current_num_threads().min(total);
    if workers <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }

    // Deal contiguous blocks of tasks to each worker's deque: block c of a
    // balanced split preserves chunk locality for slice-backed regions.
    let mut feed = tasks.into_iter().enumerate();
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = (0..workers)
        .map(|w| {
            let lo = w * total / workers;
            let hi = (w + 1) * total / workers;
            Mutex::new(feed.by_ref().take(hi - lo).collect())
        })
        .collect();
    let deques = &deques;

    let run_worker = move |w: usize| -> Vec<(usize, R)> {
        let mut done = Vec::new();
        loop {
            // Own deque first (front), then steal from a victim's back.
            let mut job = deques[w].lock().expect("deque poisoned").pop_front();
            if job.is_none() {
                for off in 1..deques.len() {
                    let victim = (w + off) % deques.len();
                    job = deques[victim].lock().expect("deque poisoned").pop_back();
                    if job.is_some() {
                        break;
                    }
                }
            }
            match job {
                Some((idx, task)) => done.push((idx, task())),
                None => return done,
            }
        }
    };

    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(total).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|w| s.spawn(move || run_worker(w)))
            .collect();
        // This thread is worker 0; if it panics, scope still joins the rest.
        let mut batches = vec![run_worker(0)];
        let mut panic = None;
        for h in handles {
            match h.join() {
                Ok(batch) => batches.push(batch),
                Err(payload) => panic = panic.or(Some(payload)),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        for (idx, r) in batches.into_iter().flatten() {
            results[idx] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every task ran exactly once"))
        .collect()
}

/// Run two closures, potentially in parallel, and return both results.
/// A panic in either side propagates to the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}
