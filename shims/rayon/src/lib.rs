//! Offline stand-in for the subset of `rayon` this workspace uses — now a
//! **real parallel runtime**, not a sequential fallback.
//!
//! Every `par_*` entry point runs on a work-stealing thread pool
//! ([`pool`]): the region's items are cut into chunks, dealt to per-worker
//! deques, and workers steal across deques until the region drains. The
//! pool is sized from [`std::thread::available_parallelism`] and can be
//! overridden with the `MSR_THREADS` environment variable (`0` or `1`
//! force fully sequential execution); [`with_threads`] scopes an override
//! to one closure for tests. Worker panics propagate to the caller and
//! the region always shuts down cleanly (scoped threads cannot leak).
//!
//! Chunk partitioning is a pure function of input length — never of the
//! worker count — and chunk results combine in chunk order, so reductions
//! (`sum`, `reduce`) and `collect` are bitwise deterministic for every
//! thread count. See `iter` module docs.
//!
//! The API mirrors the rayon subset the workspace imports (`par_iter`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut`, `into_par_iter`, `zip`,
//! `map`, `enumerate`, `flat_map_iter`, `for_each`, `sum`, `reduce`,
//! `collect`, [`join`]); the real rayon can be swapped back in with minor
//! changes when a registry is available.

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, join, with_threads, ThreadPool};

/// The traits the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    use crate::iter::{
        ChunksMutProducer, ChunksProducer, Producer, SliceMutProducer, SliceProducer, VecProducer,
    };
    pub use crate::iter::{ParFlatMap, ParIter};

    /// `into_par_iter()` for owned collections and integer ranges.
    pub trait IntoParallelIterator {
        /// The splittable source this collection turns into.
        type Producer: Producer;
        /// Consume `self` into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Producer>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Producer = VecProducer<T>;
        fn into_par_iter(self) -> ParIter<VecProducer<T>> {
            ParIter::from_producer(VecProducer(self))
        }
    }

    impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
        type Producer = VecProducer<T>;
        fn into_par_iter(self) -> ParIter<VecProducer<T>> {
            ParIter::from_producer(VecProducer(Vec::from(self)))
        }
    }

    /// `par_iter()` / `par_chunks()` over shared slices (and anything
    /// derefing to one).
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over `&T` items.
        fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
        /// Parallel iterator over `&[T]` chunks of `chunk_size` (last may
        /// be shorter).
        fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
            ParIter::from_producer(SliceProducer(self))
        }
        fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParIter::from_producer(ChunksProducer::new(self, chunk_size))
        }
    }

    /// `par_iter_mut()` / `par_chunks_mut()` over exclusive slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over `&mut T` items.
        fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
        /// Parallel iterator over `&mut [T]` chunks of `chunk_size` (last
        /// may be shorter).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
            ParIter::from_producer(SliceMutProducer(self))
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParIter::from_producer(ChunksMutProducer::new(self, chunk_size))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{join, pool, with_threads};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn adapter_chains_compile_and_run() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, 5.0, 6.0];
        let dot: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(dot, 32.0);

        let mut buf = vec![0u8; 6];
        buf.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            c.fill(i as u8);
        });
        assert_eq!(buf, [0, 0, 0, 1, 1, 1]);

        let squares: Vec<u64> = (0u64..4).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, [0, 1, 4, 9]);
    }

    #[test]
    fn pool_runs_every_task_and_orders_results() {
        with_threads(4, || {
            let n = 1000usize;
            let hits = AtomicUsize::new(0);
            let out: Vec<usize> = (0..n)
                .into_par_iter()
                .map(|i| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    i * 3
                })
                .collect();
            assert_eq!(hits.load(Ordering::Relaxed), n);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
        });
    }

    #[test]
    fn par_chunks_mut_covers_disjoint_windows() {
        with_threads(4, || {
            let mut buf = vec![0u32; 1003]; // non-multiple of the chunk size
            buf.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
                for v in c.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
            assert!(buf.iter().all(|&v| v != 0));
            assert_eq!(buf[999], 100);
            assert_eq!(buf[1000], 101, "short tail chunk still visited");
        });
    }

    #[test]
    fn reductions_are_bitwise_identical_across_thread_counts() {
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 1e-3).collect();
        let seq = with_threads(1, || xs.par_iter().map(|x| x * x).sum::<f64>());
        let par = with_threads(8, || xs.par_iter().map(|x| x * x).sum::<f64>());
        assert_eq!(seq.to_bits(), par.to_bits());

        let rseq = with_threads(1, || xs.par_iter().map(|&x| x).reduce(0.0, f64::max));
        let rpar = with_threads(8, || xs.par_iter().map(|&x| x).reduce(0.0, f64::max));
        assert_eq!(rseq.to_bits(), rpar.to_bits());
    }

    #[test]
    fn flat_map_iter_preserves_order() {
        let nested: Vec<usize> = with_threads(4, || {
            (0..50usize)
                .into_par_iter()
                .flat_map_iter(|i| (0..3).map(move |j| i * 10 + j))
                .collect()
        });
        let expect: Vec<usize> = (0..50)
            .flat_map(|i| (0..3).map(move |j| i * 10 + j))
            .collect();
        assert_eq!(nested, expect);
    }

    #[test]
    fn worker_panic_propagates_and_pool_shuts_down() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                (0..256usize).into_par_iter().for_each(|i| {
                    if i == 137 {
                        panic!("boom at {i}");
                    }
                });
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool is still usable after a panicking region.
        let sum: usize = with_threads(4, || (0..100usize).into_par_iter().sum());
        assert_eq!(sum, 4950);
    }

    #[test]
    fn join_runs_both_sides_and_propagates_panics() {
        let (a, b) = with_threads(4, || join(|| 2 + 2, || "ok"));
        assert_eq!((a, b), (4, "ok"));
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || join(|| 1, || panic!("right side")));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn with_threads_forces_sequential_inline_execution() {
        with_threads(1, || {
            let caller = std::thread::current().id();
            (0..64usize).into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), caller);
            });
        });
    }

    #[test]
    fn execute_returns_results_in_task_order() {
        let tasks: Vec<_> = (0..37).map(|i| move || i * i).collect();
        let out = with_threads(3, || pool::execute(tasks));
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let a = [1u32, 2, 3, 4, 5];
        let b = [10u32, 20, 30];
        let pairs: Vec<(u32, u32)> = with_threads(4, || {
            a.par_iter()
                .zip(b.par_iter())
                .map(|(&x, &y)| (x, y))
                .collect()
        });
        assert_eq!(pairs, [(1, 10), (2, 20), (3, 30)]);
    }
}
