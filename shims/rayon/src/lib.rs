//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! Every `par_*` entry point returns the corresponding **sequential**
//! `std` iterator, so downstream adapter chains (`zip`, `map`, `enumerate`,
//! `for_each`, `sum`, `collect`, …) compile and run unchanged — single
//! threaded. This trades the parallel speed-up for a zero-dependency build;
//! the real rayon can be swapped back in unmodified when a registry is
//! available.

/// The traits the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    /// `into_par_iter()` for owned collections and ranges: sequential
    /// fallback over [`IntoIterator`].
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's parallel iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// Rayon-only iterator combinators, provided on every std iterator so
    /// chains written against the parallel API compile sequentially.
    pub trait ParallelCombinators: Iterator + Sized {
        /// Rayon's `flat_map_iter`: plain `flat_map` sequentially.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }
    }
    impl<I: Iterator> ParallelCombinators for I {}

    /// `par_iter()` over shared slices (and anything derefing to one).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for rayon's `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut()` / `par_chunks_mut()` over exclusive slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for rayon's `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for rayon's `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapter_chains_compile_and_run() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, 5.0, 6.0];
        let dot: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(dot, 32.0);

        let mut buf = vec![0u8; 6];
        buf.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            c.fill(i as u8);
        });
        assert_eq!(buf, [0, 0, 0, 1, 1, 1]);

        let squares: Vec<u64> = (0u64..4).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, [0, 1, 4, 9]);
    }
}
