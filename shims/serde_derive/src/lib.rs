//! Offline stand-in for `serde_derive`, built directly on `proc_macro`
//! (no `syn`/`quote` available without a registry).
//!
//! Generates `impl serde::Serialize` / `impl serde::Deserialize` against the
//! sibling serde shim's value-tree model. Supports the shapes this workspace
//! actually derives on: named/tuple/unit structs and enums with unit, tuple
//! and struct variants, plus the `#[serde(skip)]` and
//! `#[serde(default = "path")]` field attributes. Anything fancier panics at
//! expansion time with a clear message rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- parsed shape -----------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
    /// `Some("")` = `#[serde(default)]`; `Some(path)` = `#[serde(default = "path")]`.
    default: Option<String>,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---- token cursor -----------------------------------------------------------

struct Cur {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cur {
    fn new(ts: TokenStream) -> Cur {
        Cur {
            toks: ts.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }
}

// ---- attribute handling -----------------------------------------------------

/// Consume leading attributes; fold any `#[serde(...)]` content into
/// (skip, default).
fn eat_attrs(c: &mut Cur) -> (bool, Option<String>) {
    let mut skip = false;
    let mut default = None;
    while c.at_punct('#') {
        c.next();
        let group = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde derive: malformed attribute, found {other:?}"),
        };
        let mut inner = Cur::new(group.stream());
        if !inner.at_ident("serde") {
            continue; // doc comments, #[default], etc.
        }
        inner.next();
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde derive: malformed #[serde] attribute: {other:?}"),
        };
        let mut a = Cur::new(args.stream());
        while a.peek().is_some() {
            let word = a.expect_ident("serde attribute name");
            match word.as_str() {
                "skip" => skip = true,
                "default" => {
                    if a.at_punct('=') {
                        a.next();
                        match a.next() {
                            Some(TokenTree::Literal(l)) => {
                                let s = l.to_string();
                                default = Some(s.trim_matches('"').to_owned());
                            }
                            other => panic!("serde derive: expected path string: {other:?}"),
                        }
                    } else {
                        default = Some(String::new());
                    }
                }
                other => panic!("serde derive shim: unsupported serde attribute `{other}`"),
            }
            if a.at_punct(',') {
                a.next();
            }
        }
    }
    (skip, default)
}

fn eat_vis(c: &mut Cur) {
    if c.at_ident("pub") {
        c.next();
        if let Some(TokenTree::Group(g)) = c.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                c.next();
            }
        }
    }
}

/// Consume a type (or any expression) up to a top-level `,`, tracking `<>`
/// depth. Nested `()`/`[]`/`{}` arrive as single `Group` tokens, so only
/// angle brackets need counting. Consumes the trailing comma if present.
fn skip_to_comma(c: &mut Cur) {
    let mut angle = 0i32;
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                c.next();
                return;
            }
            _ => {}
        }
        c.next();
    }
}

// ---- item parsing -----------------------------------------------------------

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cur::new(stream);
    let mut out = Vec::new();
    while c.peek().is_some() {
        let (skip, default) = eat_attrs(&mut c);
        eat_vis(&mut c);
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`: {other:?}"),
        }
        skip_to_comma(&mut c);
        out.push(Field {
            name,
            skip,
            default,
        });
    }
    out
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cur::new(stream);
    let mut n = 0;
    while c.peek().is_some() {
        let (skip, _) = eat_attrs(&mut c);
        if skip {
            panic!("serde derive shim: #[serde(skip)] on tuple fields is unsupported");
        }
        eat_vis(&mut c);
        skip_to_comma(&mut c);
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cur::new(stream);
    let mut out = Vec::new();
    while c.peek().is_some() {
        let _ = eat_attrs(&mut c); // doc comments / #[default]
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        skip_to_comma(&mut c); // discriminant (if any) and the separator
        out.push(Variant { name, fields });
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cur::new(input);
    let _ = eat_attrs(&mut c);
    eat_vis(&mut c);
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if c.at_punct('<') {
        panic!("serde derive shim: generic type `{name}` is unsupported");
    }
    if c.at_ident("where") {
        panic!("serde derive shim: where-clauses are unsupported");
    }
    let body = match kw.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!("serde derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other} {name}`"),
    };
    Item { name, body }
}

// ---- code generation --------------------------------------------------------

fn gen_named_to_value(fields: &[Field], access: &dyn Fn(&str) -> String) -> String {
    let mut s = String::from("{ let mut __m = ::std::collections::BTreeMap::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        s.push_str(&format!(
            "__m.insert({n:?}.to_string(), ::serde::Serialize::to_value(&{a}));\n",
            n = f.name,
            a = access(&f.name)
        ));
    }
    s.push_str("::serde::Value::Obj(__m) }");
    s
}

fn gen_named_from_obj(ty_and_variant: &str, fields: &[Field]) -> String {
    let mut s = format!("{ty_and_variant} {{\n");
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if let Some(path) = &f.default {
            let fallback = if path.is_empty() {
                "::std::default::Default::default()".to_owned()
            } else {
                format!("{path}()")
            };
            s.push_str(&format!(
                "{n}: match __m.get({n:?}) {{ ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, ::std::option::Option::None => {fallback} }},\n",
                n = f.name
            ));
        } else {
            s.push_str(&format!(
                "{n}: ::serde::de_field(__m, {n:?})?,\n",
                n = f.name
            ));
        }
    }
    s.push('}');
    s
}

fn derive_serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => gen_named_to_value(fields, &|f| format!("self.{f}")),
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Body::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", elems.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_owned(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::variant({vn:?}, ::serde::Serialize::to_value(__f0)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => ::serde::variant({vn:?}, ::serde::Value::Arr(vec![{e}])),\n",
                            b = binds.join(", "),
                            e = elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let obj = gen_named_to_value(fields, &|f| f.to_owned());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => ::serde::variant({vn:?}, {obj}),\n",
                            b = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn derive_deserialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            format!(
                "let __m = __v.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object for {name}\", __v))?;\n\
                 ::std::result::Result::Ok({})",
                gen_named_from_obj(name, fields)
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_idx(__a, {i}, {name:?})?"))
                .collect();
            format!(
                "let __a = __v.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array for {name}\", __v))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::Struct(Fields::Unit) => {
            format!("let _ = __v;\n::std::result::Result::Ok({name})")
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::de_idx(__a, {i}, {vn:?})?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let __a = __inner.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array for {name}::{vn}\", __inner))?;\n\
                             ::std::result::Result::Ok({name}::{vn}({e}))\n\
                             }}\n",
                            e = elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let __m = __inner.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object for {name}::{vn}\", __inner))?;\n\
                             ::std::result::Result::Ok({})\n\
                             }}\n",
                            gen_named_from_obj(&format!("{name}::{vn}"), fields)
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, {name:?})),\n\
                 }};\n\
                 }}\n\
                 let (__tag, __inner) = ::serde::as_variant(__v)\n\
                 .ok_or_else(|| ::serde::DeError::expected(\"variant object for {name}\", __v))?;\n\
                 let _ = __inner;\n\
                 match __tag {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, {name:?})),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

// ---- entry points -----------------------------------------------------------

/// Derive the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item)
        .parse()
        .expect("serde derive shim: generated Serialize impl failed to parse")
}

/// Derive the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde derive shim: generated Deserialize impl failed to parse")
}
