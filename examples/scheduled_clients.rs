//! Many clients, one testbed: admit a mixed fleet of Astro3D producers,
//! Volren feeds and post-processing readers into the prediction-driven
//! scheduler and compare against running the identical clients
//! back-to-back.
//!
//! ```text
//! cargo run --release --example scheduled_clients [-- <clients>]
//! ```
//!
//! AUTO-hint datasets are placed by eq. (2) predicted time adjusted by
//! live queue depth, so admissions spread the fleet across the three
//! storage resources; the dispatcher then overlaps service across
//! resources while keeping per-session results deterministic.

use msr::prelude::*;

fn main() -> CoreResult<()> {
    let clients = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6usize);
    let fleet = client_fleet(clients, 16, 24);

    // Baseline: the same clients, one at a time, through the plain
    // session API on a fresh system.
    let baseline_sys = MsrSystem::testbed(2000);
    let sequential = run_sequential(&baseline_sys, &fleet)?;

    // Scheduled: calibrate the predictor so AUTO placements are scored,
    // then admit everyone at once.
    let mut sys = MsrSystem::testbed(2000);
    sys.run_ptool(&PTool::default())?;
    let report = run_concurrent(&sys, fleet)?;

    println!(
        "{:>3} {:<12} {:>9} {:>9} {:>10} {:>10} {:>4}  placements",
        "id", "app", "requests", "bytes", "io(s)", "wait(s)", "rq"
    );
    for s in &report.sessions {
        let placements: Vec<String> = s
            .placements
            .iter()
            .map(|(d, k)| format!("{d}->{k}"))
            .collect();
        println!(
            "{:>3} {:<12} {:>9} {:>9} {:>10.2} {:>10.2} {:>4}  {}",
            s.session,
            s.app,
            s.requests,
            s.bytes,
            s.io_time.as_secs(),
            s.wait_time.as_secs(),
            s.requeues,
            placements.join(", ")
        );
    }
    println!(
        "\n{} sessions, {} requests, {} batches (largest {})",
        report.sessions.len(),
        report.requests(),
        report.batches,
        report.max_batch
    );
    println!(
        "scheduled makespan {:>9.2}s   sequential baseline {:>9.2}s   ({:.2}x)",
        report.makespan.as_secs(),
        sequential.as_secs(),
        sequential.as_secs() / report.makespan.as_secs().max(1e-9)
    );
    println!(
        "throughput {:.4} MB/s of virtual time",
        report.throughput_mb_s
    );

    // The scheduler's queues are visible in the observability snapshot.
    let snap = sys.obs.snapshot();
    for g in snap.gauges.iter().filter(|g| g.key.starts_with("sched/")) {
        println!(
            "gauge {:<32} last {:>6.0}  max {:>6.0}",
            g.key, g.last, g.max
        );
    }
    Ok(())
}
