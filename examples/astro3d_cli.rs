//! Astro3D with the paper's command-line parameters — problem size, total
//! iterations, per-kind dump frequencies and a placement configuration —
//! plus the IJ-GUI-style prediction table before the run.
//!
//! ```text
//! cargo run --release --example astro3d_cli -- \
//!     --size 32 --iters 24 --analysis-freq 6 --viz-freq 6 --ckpt-freq 6 \
//!     --config 2 --seed 7
//! ```
//!
//! `--config 1..5` selects the Fig. 9 placement configurations;
//! `--predict-only` prints the Fig. 11 table and exits.

use msr::prelude::*;

struct Args {
    size: u64,
    iters: u32,
    analysis_freq: u32,
    viz_freq: u32,
    ckpt_freq: u32,
    config: u8,
    seed: u64,
    predict_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        size: 32,
        iters: 24,
        analysis_freq: 6,
        viz_freq: 6,
        ckpt_freq: 6,
        config: 2,
        seed: 7,
        predict_only: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_default()
        };
        match argv[i].as_str() {
            "--size" => args.size = take(&mut i).parse().expect("--size N"),
            "--iters" => args.iters = take(&mut i).parse().expect("--iters N"),
            "--analysis-freq" => args.analysis_freq = take(&mut i).parse().expect("freq"),
            "--viz-freq" => args.viz_freq = take(&mut i).parse().expect("freq"),
            "--ckpt-freq" => args.ckpt_freq = take(&mut i).parse().expect("freq"),
            "--config" => args.config = take(&mut i).parse().expect("--config 1..5"),
            "--seed" => args.seed = take(&mut i).parse().expect("--seed N"),
            "--predict-only" => args.predict_only = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() -> CoreResult<()> {
    let a = parse_args();
    let mut sys = MsrSystem::testbed(a.seed);
    println!("building the performance database (PTool)...");
    sys.run_ptool(&PTool::default())?;

    let mut cfg = Astro3dConfig::small(a.size, a.iters);
    cfg.analysis_freq = a.analysis_freq;
    cfg.viz_freq = a.viz_freq;
    cfg.ckpt_freq = a.ckpt_freq;
    cfg.plan = PlacementPlan::fig9(a.config);
    cfg.step_mode = StepMode::Physics;
    cfg.seed = a.seed;
    let (grid, iters) = (cfg.grid, cfg.iterations);
    println!(
        "astro3d: {size}^3, N={iters}, freqs {af}/{vf}/{cf}, config {cfgn}, ~{gb:.2} GB of dumps\n",
        size = a.size,
        af = a.analysis_freq,
        vf = a.viz_freq,
        cf = a.ckpt_freq,
        cfgn = a.config,
        gb = cfg.total_dump_bytes() as f64 / 1e9,
    );

    let mut sim = Astro3d::new(cfg);
    let mut session = sys
        .session()
        .app("astro3d")
        .user("cli")
        .iterations(iters)
        .grid(grid)
        .build()?;
    let specs = sim.dataset_specs();
    let mut handles = Vec::new();
    for spec in specs {
        handles.push((session.open(spec.clone())?, spec));
    }

    // The IJ-GUI view: predicted VIRTUALTIME per dataset.
    let prediction = session.predict()?;
    println!("{prediction}");
    if a.predict_only {
        return Ok(());
    }

    println!("running...");
    for iter in 0..=iters {
        for (h, spec) in &handles {
            if session.dumps_at(*h, iter) {
                let data = sim.field_bytes(&spec.name).expect("known field");
                session.write_iteration(*h, iter, &data)?;
            }
        }
        if iter < iters {
            sim.advance();
        }
    }
    let report = session.finalize()?;
    println!("{report}");
    println!(
        "predicted {:.1}s vs actual {:.1}s ({:+.1}%)",
        prediction.total.as_secs(),
        report.total_io.as_secs(),
        (prediction.total.as_secs() / report.total_io.as_secs() - 1.0) * 100.0
    );
    Ok(())
}
