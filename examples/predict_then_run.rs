//! The §4 workflow: PTool builds the performance database, the predictor
//! estimates the run (Fig. 11 style), the run executes, and we compare —
//! including the §7 future-work policy where the user states only a
//! performance target and the system picks the resources.
//!
//! ```text
//! cargo run --release --example predict_then_run
//! ```

use msr::prelude::*;

fn main() -> CoreResult<()> {
    let mut sys = MsrSystem::testbed(99);

    // 1. PTool: "set up her basic performance prediction database in a
    //    single run".
    println!("running PTool sweep over the three resources...");
    sys.run_ptool(&PTool::default())?;

    // 2. Declare the run: vr_temp to local disks, vr_press to remote disks
    //    (the §4.2 worked example), everything else disabled.
    let grid = ProcGrid::new(2, 2, 2);
    let mut cfg = Astro3dConfig::small(64, 120);
    cfg.plan = PlacementPlan::uniform(LocationHint::Disable)
        .with("vr_temp", LocationHint::LocalDisk)
        .with("vr_press", LocationHint::RemoteDisk);
    let iters = cfg.iterations;
    let mut sim = Astro3d::new(cfg);

    let mut session = sys
        .session()
        .app("astro3d")
        .user("xshen")
        .iterations(iters)
        .grid(grid)
        .build()?;
    // Open the datasets first so the session can be predicted...
    let specs = sim.dataset_specs();
    let mut handles = Vec::new();
    for spec in specs {
        handles.push((session.open(spec.clone())?, spec));
    }

    // 3. Predict before running (this is what the user would check before
    //    choosing her SP-2 maximum-run-time parameter).
    let prediction = session.predict()?;
    println!("\npredicted (Fig. 11-style table):\n{prediction}");

    // 4. Actually run.
    for iter in 0..=iters {
        for (h, spec) in &handles {
            if session.dumps_at(*h, iter) {
                let data = sim.field_bytes(&spec.name).expect("known field");
                session.write_iteration(*h, iter, &data)?;
            }
        }
        if iter < iters {
            sim.step();
        }
    }
    let report = session.finalize()?;

    // 5. Compare predicted vs actual per dataset.
    let cmp = compare(
        prediction
            .rows
            .iter()
            .zip(&report.datasets)
            .filter(|(_, a)| a.dumps > 0)
            .map(|(p, a)| (p.name.clone(), p.total, a.io_time)),
    );
    println!("prediction accuracy (eq. (1) charges T_conn per dump, so the\n  relative error shrinks as dumps grow toward the paper's 2-8 MB):\n{cmp}");

    // 6. The §7 future-work policy: only a performance requirement given.
    let mut sys2 = MsrSystem::testbed(100);
    sys2.run_ptool(&PTool::default())?;
    sys2.set_policy(PlacementPolicy::PerformanceTarget {
        per_dump: SimDuration::from_secs(2.0),
    });
    let mut s2 = sys2
        .session()
        .app("astro3d")
        .user("xshen")
        .iterations(12)
        .grid(grid)
        .build()?;
    let auto = DatasetSpec::builder("vr_scalar")
        .element(ElementType::U8)
        .cube(64)
        .build();
    let h = s2.open(auto)?; // AUTO hint + performance target
    let payload = sim.field_bytes("vr_scalar").expect("known field");
    s2.write_iteration(h, 0, &payload)?;
    let rep2 = s2.finalize()?;
    println!(
        "performance-target policy placed vr_scalar on: {}",
        rep2.datasets[0]
            .location
            .map(|k| k.to_string())
            .unwrap_or("-".into())
    );
    Ok(())
}
