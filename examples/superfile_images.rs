//! The superfile optimization (Fig. 10(c)): Volren's many small image
//! files on a remote resource, stored naively vs. in one container.
//!
//! ```text
//! cargo run --release --example superfile_images
//! ```

use msr::prelude::*;

fn main() -> CoreResult<()> {
    let sys = MsrSystem::testbed(11);
    let grid = ProcGrid::new(2, 2, 2);
    let iters = 60; // 11 frames at freq 6

    // Produce vr_temp dumps on local disk (fast) so the comparison isolates
    // the *image* I/O on the remote disk.
    let mut cfg = Astro3dConfig::small(32, iters);
    cfg.plan =
        PlacementPlan::uniform(LocationHint::Disable).with("vr_temp", LocationHint::LocalDisk);
    let mut sim = Astro3d::new(cfg);
    let mut session = sys
        .session()
        .app("astro3d")
        .user("u")
        .iterations(iters)
        .grid(grid)
        .build()?;
    sim.run(&mut session)?;
    let run = session.run_id();
    session.finalize()?;

    let remote = sys
        .resource(StorageKind::RemoteDisk)
        .expect("testbed remote disk");
    remote.lock().connect()?;

    // Naive: one remote file per frame.
    let naive = run_volren(
        &sys,
        run,
        "vr_temp",
        iters,
        6,
        grid,
        RenderMode::MaxIntensity,
        &remote,
        "volren/naive",
    )?;

    // Superfile: frames appended into one container.
    let (superfile, mut sf) = run_volren_superfile(
        &sys,
        run,
        "vr_temp",
        iters,
        6,
        grid,
        RenderMode::MaxIntensity,
        &remote,
        "volren/container",
    )?;

    // Read everything back both ways.
    let mut naive_read = SimDuration::ZERO;
    {
        let mut r = remote.lock();
        let frames: Vec<String> = r.list("volren/naive/");
        for f in frames {
            let open = r.open(&f, OpenMode::Read)?;
            naive_read += open.time;
            let len = r.file_size(&f).unwrap_or(0) as usize;
            naive_read += r.read(open.value, len)?.time;
            naive_read += r.close(open.value)?.time;
        }
    }
    let mut super_read = SimDuration::ZERO;
    for member in sf.members() {
        let (t, _) = sf.read_member(&remote, &member)?;
        super_read += t;
    }

    println!(
        "frames: {}   image bytes: {}",
        naive.frames, naive.image_bytes
    );
    println!("WRITE  naive    : {:>9.2}s", naive.write_time.as_secs());
    println!("WRITE  superfile: {:>9.2}s", superfile.write_time.as_secs());
    println!("READ   naive    : {:>9.2}s", naive_read.as_secs());
    println!(
        "READ   superfile: {:>9.2}s (1 staging read, then memory)",
        super_read.as_secs()
    );
    println!(
        "read speedup: {:.1}x   write speedup: {:.1}x",
        naive_read.as_secs() / super_read.as_secs().max(1e-9),
        naive.write_time.as_secs() / superfile.write_time.as_secs().max(1e-9),
    );
    Ok(())
}
