//! Tiered data lifecycle end to end: checkpoint fleets write to local
//! disk, the lifecycle engine thins each history to its retention window
//! and walks cold epochs down the tier ladder (local disk → remote disk
//! → tape → vault), and a priced recall brings vaulted data back when
//! someone finally asks for it.
//!
//! ```text
//! cargo run --release --example lifecycle_run
//! ```

use msr::prelude::*;

fn tiers(sys: &MsrSystem) -> String {
    sys.usage()
        .iter()
        .map(|(k, b)| format!("{k}: {b} B"))
        .collect::<Vec<_>>()
        .join("   ")
}

fn main() -> CoreResult<()> {
    let sys = MsrSystem::testbed(7);

    // Epoch 1: three checkpoint producers dump `chk` every 3 iterations,
    // pinned to local disk for fast restart.
    let first = run_concurrent(&sys, checkpoint_fleet(3, 16, 12))?;
    println!("after epoch 1     {}", tiers(&sys));

    // The fleet goes quiet long enough for epoch 1 to turn cold.
    sys.clock.advance(SimDuration::from_secs(900.0));

    // Epoch 2 runs with the engine attached: between dispatch rounds it
    // prunes epoch-1 histories to their newest 2 dumps and demotes the
    // cold datasets, while its own admitted runs are busy and untouched.
    let engine = LifecycleEngine::new(LifecycleConfig {
        demote_after: SimDuration::from_secs(600.0),
        retention: RetentionPolicy::keep_all().with_keep_last(2),
        ..LifecycleConfig::default()
    });
    let mut sched = Scheduler::new(&sys)
        .with_lifecycle(engine.clone())
        .lifecycle_every(2);
    for p in checkpoint_fleet(3, 16, 12) {
        sched.admit(p)?;
    }
    let report = sched.run()?;
    let t = report.lifecycle;
    println!(
        "epoch 2 drain     {} ticks: {} demotions, {} files pruned ({} B)",
        t.ticks, t.demotions, t.pruned_files, t.pruned_bytes
    );
    println!("after epoch 2     {}", tiers(&sys));

    // Everyone leaves for the weekend. Explicit ticks keep stepping the
    // cold data down until it bottoms out on tape and, once idle past
    // `vault_after`, moves into the vault.
    sys.clock.advance(SimDuration::from_secs(4000.0));
    let mut vaulted = 0;
    loop {
        let tick = engine.tick(&sys);
        vaulted += tick.vaulted;
        if tick.moves() == 0 && tick.vaulted == 0 {
            break;
        }
    }
    println!(
        "after the weekend {}   ({vaulted} dumps vaulted)",
        tiers(&sys)
    );

    // Vaulted bytes are on tape but unreadable until a priced recall.
    let run = RunId(first.sessions[0].run);
    let grid = ProcGrid::new(1, 1, 1);
    let denied = sys.read_dataset(run, "chk", 12, grid, IoStrategy::Collective);
    println!("read while vaulted: {}", denied.unwrap_err());
    let before = sys.clock.now();
    let recalled = engine
        .recall_dataset(&sys, run, "chk")
        .expect("tape is healthy");
    println!(
        "recalled {recalled} dumps in {:.0} virtual seconds",
        sys.clock.now().since(before).as_secs()
    );
    let (bytes, _) = sys.read_dataset(run, "chk", 12, grid, IoStrategy::Collective)?;
    println!(
        "read after recall: {} bytes of checkpoint back",
        bytes.len()
    );
    Ok(())
}
