//! The full Fig. 1(b) pipeline at laptop scale: Astro3D produces datasets
//! under two placement schemes, then the post-processing tools (MSE data
//! analysis and Volren) consume them — showing the multi-storage win on
//! the *whole investigation*, not just the simulation.
//!
//! ```text
//! cargo run --release --example astro3d_pipeline
//! ```

use msr::prelude::*;

fn investigate(placement: PlacementPlan, label: &str) -> CoreResult<()> {
    let sys = MsrSystem::testbed(7);
    let mut cfg = Astro3dConfig::small(32, 24);
    cfg.plan = placement;
    let grid = cfg.grid;
    let iters = cfg.iterations;

    // --- produce -----------------------------------------------------------
    let mut sim = Astro3d::new(cfg);
    let mut session = sys
        .session()
        .app("astro3d")
        .user("xshen")
        .iterations(iters)
        .grid(grid)
        .build()?;
    sim.run(&mut session)?;
    let run = session.run_id();
    let produce = session.finalize()?;

    // --- data analysis on `temp` -------------------------------------------
    let series = run_analysis(&sys, run, "temp", iters, 6, grid, IoStrategy::Collective)?;

    // --- volume render `vr_temp` to images on local disk --------------------
    let local = sys
        .resource(StorageKind::LocalDisk)
        .expect("testbed has local disk");
    let volren = run_volren(
        &sys,
        run,
        "vr_temp",
        iters,
        6,
        grid,
        RenderMode::Compositing,
        &local,
        "volren/out",
    )?;

    // --- view one frame through the image-viewer tool ----------------------
    let frame_stats = {
        let mut r = local.lock();
        let path = "volren/out/image.t00006.pgm";
        let len = r.file_size(path).unwrap_or(0) as usize;
        let h = r.open(path, OpenMode::Read)?.value;
        let bytes = r.read(h, len)?.value;
        r.close(h)?;
        Image::from_pgm(&bytes)
            .map(|img| format!("{}x{} mean {:.1}", img.width, img.height, img.mean()))
            .unwrap_or_else(|| "<corrupt>".into())
    };

    println!("== {label} ==");
    println!(
        "  simulation write I/O : {:>10.1}s",
        produce.total_io.as_secs()
    );
    println!(
        "  analysis read I/O    : {:>10.1}s ({} MSE points)",
        series.io_time.as_secs(),
        series.points.len()
    );
    println!(
        "  volren read I/O      : {:>10.1}s ({} frames)",
        volren.read_time.as_secs(),
        volren.frames
    );
    println!("  rendered frame       : {frame_stats}");
    let total = produce.total_io + series.io_time + volren.read_time;
    println!("  WHOLE INVESTIGATION  : {:>10.1}s\n", total.as_secs());
    Ok(())
}

fn main() -> CoreResult<()> {
    // Single-storage world: everything on tape (Fig. 9 config 1 + reads).
    investigate(
        PlacementPlan::uniform(LocationHint::RemoteTape),
        "single storage resource (all on tape)",
    )?;
    // Multi-storage world: temp near the analysis, vr_temp near the
    // renderer, everything else archived (the paper's recommended usage).
    investigate(
        PlacementPlan::uniform(LocationHint::RemoteTape)
            .with("temp", LocationHint::RemoteDisk)
            .with("vr_temp", LocationHint::LocalDisk),
        "multi-storage placement (paper's §5 scheme)",
    )?;
    Ok(())
}
