//! Content-addressed checkpoints end to end: a churning checkpoint
//! series opts into the chunk plane from the dataset builder, the store
//! dedups everything the iterations share, the accounting splits into
//! logical (what the application wrote, what quotas charge) vs physical
//! (what the media holds), and the predictor learns the dataset's
//! moved/logical ratio so future placement prices real bytes.
//!
//! ```text
//! cargo run --release --example chunked_checkpoints
//! ```

use msr::prelude::*;

/// A checkpoint payload: a fixed pseudo-random base plus a small window
/// of fresh bytes per iteration — the shape a simulation restart file
/// actually has, and what gives dedup something to find.
fn checkpoint(iter: u32, len: usize) -> Vec<u8> {
    let stream = |seed: u64, n: usize| -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect()
    };
    let mut out = stream(0x5eed, len);
    let window = (len / 16).max(1);
    let at = (iter as usize).wrapping_mul(7919) % len;
    for (i, b) in stream(u64::from(iter) + 1, window).into_iter().enumerate() {
        out[(at + i) % len] = b;
    }
    out
}

fn main() -> CoreResult<()> {
    let sys = MsrSystem::testbed(42);
    let mut s = sys
        .session()
        .app("churn")
        .user("me")
        .iterations(24)
        .build()?;

    // The whole opt-in is three builder calls: CDC chunking, compressed
    // frames, content-addressed storage (the default once chunked).
    let spec = DatasetSpec::builder("state")
        .element(ElementType::F32)
        .cube(32)
        .frequency(3)
        .hint(LocationHint::LocalDisk)
        .chunked(ChunkPolicy::cdc(8))
        .compression(Codec::Lz4Like(1))
        .build();
    let bytes = spec.snapshot_bytes() as usize;
    let h = s.open(spec)?;

    for iter in (0..=24).step_by(3) {
        s.write_iteration(h, iter, &checkpoint(iter, bytes))?;
    }

    // Reads self-describe through the stored manifest and verify every
    // chunk digest on the way back.
    let (data, _) = s.read_iteration(h, 12)?;
    assert_eq!(data, checkpoint(12, bytes), "bitwise roundtrip");
    s.finalize()?;

    // What the application dumped vs what the media actually holds.
    let logical = sys.usage_logical()[&StorageKind::LocalDisk];
    let physical = sys.usage()[&StorageKind::LocalDisk];
    println!("logical bytes (quotas charge these):  {logical}");
    println!(
        "physical bytes (the disk holds these): {physical}  ({:.1}x less)",
        logical as f64 / physical as f64
    );

    let name = sys
        .resource(StorageKind::LocalDisk)
        .expect("testbed disk")
        .lock()
        .name()
        .to_owned();
    let stats = sys
        .engine
        .chunk_plane()
        .store_stats(&name)
        .expect("chunked writes populate the store");
    println!(
        "chunk store: {} chunks, {} dedup hits / {} inserts, {} GCed",
        stats.chunks, stats.hits, stats.inserts, stats.gcs
    );

    // Drain the write deltas into the predictor: every eq. (2) pricing
    // site (placement, admission, prefetch, migration) now scales this
    // dataset's byte terms by the learned moved/logical ratio.
    sys.sync_ratios();
    println!(
        "learned moved/logical ratio for `state`: {:.3}",
        sys.predicted_ratio("state")
    );
    Ok(())
}
