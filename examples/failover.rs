//! The §5 reliability example, extended with the resilience subsystem:
//! "suppose that the remote tape system is down for maintenance … the
//! user does not have to stop her experiments."
//!
//! Phase 1 — *transient* faults: an injected SRB hiccup fails the first
//! few native calls. The engine's retry policy absorbs them with backoff
//! charged to the virtual timeline; no failover happens and the dataset
//! stays on tape.
//!
//! Phase 2 — *hard* outage: HPSS enters a maintenance window mid-run.
//! Retrying cannot help an offline resource, so checkpoints transparently
//! fail over to the remote disks and the catalog records the new
//! location.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use msr::prelude::*;

fn main() -> CoreResult<()> {
    let mut sys = MsrSystem::testbed(23);
    // An SRB hiccup: the first two native calls on tape fail transiently,
    // then the fault clears — exactly the shape a retry budget absorbs.
    let fault_log = sys
        .inject_faults(
            StorageKind::RemoteTape,
            FaultPlan::none().with_error_burst(2),
        )
        .expect("tape is registered");
    let mut session = sys
        .session()
        .app("astro3d")
        .user("demo")
        .iterations(48)
        .grid(ProcGrid::new(2, 2, 2))
        .build()?;

    let spec = DatasetSpec::builder("restart_temp")
        .element(ElementType::F32)
        .cube(32)
        .hint(LocationHint::RemoteTape)
        .amode(AccessMode::OverWrite)
        .build();
    let payload: Vec<u8> = (0..spec.snapshot_bytes())
        .map(|i| (i % 256) as u8)
        .collect();
    let h = session.open(spec)?;

    for iter in 0..=48 {
        if iter == 20 {
            println!(">>> iteration 20: HPSS enters its maintenance window");
            sys.set_resource_online(StorageKind::RemoteTape, false);
        }
        if iter == 40 {
            println!(">>> iteration 40: HPSS is back");
            sys.set_resource_online(StorageKind::RemoteTape, true);
        }
        if let Some(report) = session.write_iteration(h, iter, &payload)? {
            let resilience = if report.retries > 0 {
                format!(" ({} retries, {} backoff)", report.retries, report.backoff)
            } else {
                String::new()
            };
            println!(
                "iter {iter:>2}: checkpoint written in {:>9}{resilience}",
                report.elapsed
            );
        }
    }

    let report = session.finalize()?;
    println!(
        "\ninjected transient faults: {} — all absorbed below the session",
        fault_log.errors_injected()
    );
    println!(
        "tape breaker state: {:?}",
        sys.health.state(StorageKind::RemoteTape)
    );

    println!("\nplacement history (transient faults do not appear here):");
    for e in &report.events {
        println!(
            "  iter {:>2}: {} -> {}  ({})",
            e.at_iteration,
            e.from.map(|k| k.to_string()).unwrap_or("-".into()),
            e.to.map(|k| k.to_string()).unwrap_or("-".into()),
            e.reason
        );
    }

    println!("\nvirtual-time trace of the failover path:");
    for ev in sys.trace.events_in("failover") {
        println!("  [{}] {}", ev.at, ev.message);
    }

    println!("\nfinal location: {:?}", report.datasets[0].location);
    println!(
        "run never stopped: {} checkpoints written",
        report.datasets[0].dumps
    );
    Ok(())
}
