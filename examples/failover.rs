//! The §5 reliability example: "suppose that the remote tape system is
//! down for maintenance … the user does not have to stop her experiments."
//! The tape goes down mid-run; checkpoints transparently fail over to the
//! remote disks and the catalog records the new location.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use msr::prelude::*;

fn main() -> CoreResult<()> {
    let sys = MsrSystem::testbed(23);
    let grid = ProcGrid::new(2, 2, 2);
    let mut session = sys.init_session("astro3d", "demo", 48, grid)?;

    let spec = DatasetSpec::astro3d_default("restart_temp", ElementType::F32, 32)
        .with_hint(LocationHint::RemoteTape)
        .with_amode(AccessMode::OverWrite);
    let payload: Vec<u8> = (0..spec.snapshot_bytes())
        .map(|i| (i % 256) as u8)
        .collect();
    let h = session.open(spec)?;

    for iter in 0..=48 {
        if iter == 20 {
            println!(">>> iteration 20: HPSS enters its maintenance window");
            sys.set_resource_online(StorageKind::RemoteTape, false);
        }
        if iter == 40 {
            println!(">>> iteration 40: HPSS is back");
            sys.set_resource_online(StorageKind::RemoteTape, true);
        }
        if let Some(report) = session.write_iteration(h, iter, &payload)? {
            println!(
                "iter {iter:>2}: checkpoint written in {:>9}",
                report.elapsed
            );
        }
    }

    let report = session.finalize()?;
    println!("\nplacement history:");
    for e in &report.events {
        println!(
            "  iter {:>2}: {} -> {}  ({})",
            e.at_iteration,
            e.from.map(|k| k.to_string()).unwrap_or("-".into()),
            e.to.map(|k| k.to_string()).unwrap_or("-".into()),
            e.reason
        );
    }
    println!("\nfinal location: {:?}", report.datasets[0].location);
    println!(
        "run never stopped: {} checkpoints written",
        report.datasets[0].dumps
    );
    Ok(())
}
