//! Observability end to end: run an Astro3D workload with every layer
//! instrumented, print the aggregated metrics snapshot, export the event
//! stream as Chrome trace JSON + JSON-lines, and feed the observations back
//! into the performance database for a sharper re-prediction.
//!
//! ```text
//! cargo run --release --example traced_run
//! ```
//!
//! Open `target/traced_run.trace.json` in Perfetto / `about:tracing` to see
//! the storage, network, runtime and session layers as separate processes
//! on the shared virtual timeline.

use msr::prelude::*;

fn main() -> CoreResult<()> {
    let mut sys = MsrSystem::testbed(7);

    // Calibrate the performance database, then drop the calibration traffic
    // from the stream: we want the run's own trace.
    sys.run_ptool(&PTool::default())?;
    sys.obs.clear();

    // A background-loaded WAN makes the trace (and the feedback) interesting.
    sys.set_wan_background_load(2.0);

    let grid = ProcGrid::new(2, 2, 2);
    let mut cfg = Astro3dConfig::small(64, 24);
    cfg.plan = PlacementPlan::uniform(LocationHint::Disable)
        .with("vr_temp", LocationHint::LocalDisk)
        .with("vr_press", LocationHint::RemoteDisk);
    let iters = cfg.iterations;
    let mut sim = Astro3d::new(cfg);

    let mut session = sys
        .session()
        .app("astro3d")
        .user("xshen")
        .iterations(iters)
        .grid(grid)
        .build()?;
    let mut handles = Vec::new();
    for spec in sim.dataset_specs() {
        handles.push((session.open(spec.clone())?, spec));
    }
    let stale = session.predict()?.total;

    // Application-layer markers interleave with the system's own events.
    let app_rec = sys.obs_recorder();
    for iter in 0..=iters {
        app_rec.instant(
            Layer::App,
            "astro3d",
            "iteration",
            sys.clock.now(),
            &format!("iter {iter}"),
        );
        for (h, spec) in &handles {
            if session.dumps_at(*h, iter) {
                let data = sim.field_bytes(&spec.name).expect("known field");
                session.write_iteration(*h, iter, &data)?;
            }
        }
        if iter < iters {
            sim.step();
        }
    }
    let report = session.finalize()?;

    // 1. Aggregated metrics snapshot.
    let snap = sys.obs.snapshot();
    println!("== metrics snapshot ==\n{snap}");

    // 2. Exports: Chrome trace + JSON-lines next to the build artifacts.
    let events = sys.obs.events();
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/traced_run.trace.json", chrome_trace(&events)).expect("write trace");
    std::fs::write("target/traced_run.events.jsonl", jsonl(&events)).expect("write jsonl");
    println!(
        "wrote target/traced_run.trace.json ({} events) and target/traced_run.events.jsonl",
        events.len()
    );

    // 3. Close the loop: feed the observed native calls back into the
    //    performance database and re-predict the run.
    let feeder = PerfDbFeeder::new();
    let mut db = sys.predictor().expect("calibrated").db.clone();
    let summary = feeder.ingest(&mut db, &events);
    sys.set_perf_db(db);
    let mut s2 = sys
        .session()
        .app("astro3d-re")
        .user("xshen")
        .iterations(iters)
        .grid(grid)
        .build()?;
    for spec in sim.dataset_specs() {
        s2.open(spec)?;
    }
    let fresh = s2.predict()?.total;
    println!(
        "actual I/O {:.2}s | predicted from calibration {:.2}s | after feeding \
         {} observed calls back: {:.2}s",
        report.total_io.as_secs(),
        stale.as_secs(),
        summary.spans,
        fresh.as_secs()
    );
    Ok(())
}
