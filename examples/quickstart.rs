//! Quickstart: write one dataset to each storage class and read it back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use msr::prelude::*;

fn main() -> CoreResult<()> {
    // The calibrated §3.2 environment: local disks at ANL, SRB disks and
    // HPSS tape at SDSC, metadata catalog at NWU, all in virtual time.
    let sys = MsrSystem::testbed(42);

    // A session = one application run on a 2x2x2 process grid (Fig. 5).
    let mut session = sys
        .session()
        .app("quickstart")
        .user("demo")
        .iterations(12)
        .grid(ProcGrid::new(2, 2, 2))
        .build()?;

    // Three 32^3 u8 datasets, one per storage class. The location hint is
    // *per dataset* — the architecture's core idea.
    let mut handles = Vec::new();
    for (name, hint) in [
        ("fast", LocationHint::LocalDisk),
        ("roomy", LocationHint::RemoteDisk),
        ("archive", LocationHint::RemoteTape),
    ] {
        let spec = DatasetSpec::builder(name)
            .element(ElementType::U8)
            .cube(32)
            .hint(hint)
            .build();
        handles.push((session.open(spec)?, name));
    }

    // Dump every 6 iterations (0, 6, 12).
    let payload: Vec<u8> = (0..32u32 * 32 * 32).map(|i| (i % 251) as u8).collect();
    for iter in 0..=12 {
        for (h, name) in &handles {
            if let Some(report) = session.write_iteration(*h, iter, &payload)? {
                println!(
                    "iter {iter:>2}: dumped {name:<8} in {:>8} ({} native calls)",
                    report.elapsed, report.native_writes
                );
            }
        }
    }

    // Read one dump back from each resource and verify the bytes survived.
    for (h, name) in &handles {
        let (data, report) = session.read_iteration(*h, 6)?;
        assert_eq!(data, payload, "roundtrip through {name}");
        println!("read {name:<8} back in {:>8}", report.elapsed);
    }

    let report = session.finalize()?;
    println!("\n{report}");
    println!("virtual clock at {}", sys.clock.now());
    Ok(())
}
