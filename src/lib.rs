//! # msr — distributed multi-storage resource architecture
//!
//! Facade crate re-exporting the whole reproduction of Shen, Choudhary,
//! Matarazzo & Sinha, *"A Distributed Multi-Storage Resource Architecture
//! and I/O Performance Prediction for Scientific Computing"* (HPDC 2000).
//!
//! Layer map (bottom-up, matching the paper's Fig. 3):
//!
//! | paper layer | crate |
//! |---|---|
//! | physical storage resources | [`storage`] (+ [`net`] underneath) |
//! | native storage interfaces  | [`storage::StorageResource`] |
//! | run-time library           | [`runtime`] |
//! | user API                   | [`core`] |
//! | user applications          | [`apps`] |
//! | metadata DB (MDMS)         | [`meta`] |
//! | I/O performance predictor  | [`predict`] |
//! | cross-layer observability  | [`obs`] (feeds [`predict`] online) |
//! | concurrent-session scheduler | [`sched`] |
//! | tiered data lifecycle      | [`lifecycle`] (migration, retention, vaulting) |
//!
//! Start with [`core::MsrSystem::testbed`] and the `quickstart` example.
//! Every example compiles from [`prelude`] alone:
//!
//! ```
//! use msr::prelude::*;
//!
//! let sys = MsrSystem::testbed(42);
//! let mut session = sys.session().app("demo").iterations(12).build()?;
//! let spec = DatasetSpec::builder("temp")
//!     .element(ElementType::F32)
//!     .cube(8)
//!     .build();
//! let h = session.open(spec)?;
//! session.write_iteration(h, 0, &[0u8; 8 * 8 * 8 * 4])?;
//! let report = session.finalize()?;
//! assert_eq!(report.datasets.len(), 1);
//! # Ok::<(), CoreError>(())
//! ```

pub use msr_apps as apps;
pub use msr_chunk as chunk;
pub use msr_core as core;
pub use msr_lifecycle as lifecycle;
pub use msr_meta as meta;
pub use msr_net as net;
pub use msr_obs as obs;
pub use msr_predict as predict;
pub use msr_runtime as runtime;
pub use msr_sched as sched;
pub use msr_sim as sim;
pub use msr_storage as storage;

/// The most commonly needed names in one import — everything the
/// `examples/` directory uses.
pub mod prelude {
    pub use msr_apps::analysis::run_analysis;
    pub use msr_apps::multi::{
        batch_fleet, checkpoint_fleet, checkpoint_producer, client_fleet, noisy_fleet, quiet_fleet,
        register_antagonist_tenants, run_concurrent, run_overloaded, run_sequential, strip_tenants,
        ClientKind,
    };
    pub use msr_apps::volren::{run_volren, run_volren_superfile};
    pub use msr_apps::{
        bytes_to_f32s, f32s_to_bytes, Astro3d, Astro3dConfig, Image, PlacementPlan, RenderMode,
        StepMode,
    };
    pub use msr_core::{
        classify, BreakerState, ChunkPolicy, Codec, CoreError, CoreResult, DatasetSpec,
        DatasetSpecBuilder, ErrorClass, FutureUse, HealthCounters, HealthTracker, IngestSpec,
        LoadBoard, LocationHint, MsrSystem, OverloadPolicy, PlacementPolicy, RunReport, Session,
        SessionBuilder, Tenant, TenantId, TenantQuota, TenantRegistry,
    };
    pub use msr_lifecycle::{
        tier_down, tier_up, LifecycleConfig, LifecycleEngine, RetentionPolicy, TickReport,
        TickTotals,
    };
    pub use msr_meta::{AccessMode, ElementType, RunId};
    pub use msr_obs::{chrome_trace, jsonl, Layer, MetricsSnapshot, Recorder, Registry};
    pub use msr_predict::{compare, PTool, PerfDbFeeder, Predictor};
    pub use msr_runtime::{Dims3, IoStrategy, Pattern, ProcGrid, RetryPolicy, Superfile};
    pub use msr_sched::{SchedReport, Scheduler, SessionProgram, SessionReport, TenantReport};
    pub use msr_sim::SimDuration;
    pub use msr_storage::{FaultKind, FaultLog, FaultPlan, OpKind, OpenMode, StorageKind};
}
