//! # msr — distributed multi-storage resource architecture
//!
//! Facade crate re-exporting the whole reproduction of Shen, Choudhary,
//! Matarazzo & Sinha, *"A Distributed Multi-Storage Resource Architecture
//! and I/O Performance Prediction for Scientific Computing"* (HPDC 2000).
//!
//! Layer map (bottom-up, matching the paper's Fig. 3):
//!
//! | paper layer | crate |
//! |---|---|
//! | physical storage resources | [`storage`] (+ [`net`] underneath) |
//! | native storage interfaces  | [`storage::StorageResource`] |
//! | run-time library           | [`runtime`] |
//! | user API                   | [`core`] |
//! | user applications          | [`apps`] |
//! | metadata DB (MDMS)         | [`meta`] |
//! | I/O performance predictor  | [`predict`] |
//! | cross-layer observability  | [`obs`] (feeds [`predict`] online) |
//!
//! Start with [`core::MsrSystem::testbed`] and the `quickstart` example.

pub use msr_apps as apps;
pub use msr_core as core;
pub use msr_meta as meta;
pub use msr_net as net;
pub use msr_obs as obs;
pub use msr_predict as predict;
pub use msr_runtime as runtime;
pub use msr_sim as sim;
pub use msr_storage as storage;

/// The most commonly needed names in one import.
pub mod prelude {
    pub use msr_apps::{Astro3d, Astro3dConfig, PlacementPlan, StepMode};
    pub use msr_core::{
        classify, BreakerState, CoreError, CoreResult, DatasetSpec, ErrorClass, FutureUse,
        HealthCounters, HealthTracker, LocationHint, MsrSystem, PlacementPolicy, RunReport,
        Session,
    };
    pub use msr_meta::{AccessMode, ElementType};
    pub use msr_obs::{MetricsSnapshot, Recorder, Registry};
    pub use msr_predict::{PTool, PerfDbFeeder, Predictor};
    pub use msr_runtime::{Dims3, IoStrategy, Pattern, ProcGrid, RetryPolicy, Superfile};
    pub use msr_sim::SimDuration;
    pub use msr_storage::{FaultKind, FaultLog, FaultPlan, OpKind, StorageKind};
}
